#include "mesh/live_cluster.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "dnc/pair_space.hpp"
#include "telemetry/trace.hpp"

namespace rocket::mesh {

namespace {

/// Causal-trace timestamps: seconds since the shared process epoch, the
/// same timeline every SpanRecord lives on (DESIGN.md §16).
double trace_now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       telemetry::process_epoch())
      .count();
}

}  // namespace

telemetry::ClusterSnapshot LiveCluster::cluster_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return latest_snapshot_;
}

LiveCluster::Report LiveCluster::run_all_pairs(
    const runtime::Application& app, storage::ObjectStore& store,
    const runtime::NodeRuntime::ResultFn& on_result) {
  // Pin the shared trace epoch before any node starts so every node's
  // lanes and events land on one aligned timeline (DESIGN.md §13).
  telemetry::process_epoch();
  const std::uint32_t p = std::max(1u, config_.num_nodes);
  const std::uint32_t n = app.item_count();
  const std::uint64_t total_pairs = dnc::count_pairs(dnc::root_region(n));

  // --- checkpoint journal: replay, fingerprint check, torn-tail cut ---
  CheckpointStats ck;
  std::unique_ptr<checkpoint::Journal> journal;
  std::vector<dnc::Pair> recovered;
  if (config_.checkpoint_store != nullptr) {
    ck.enabled = true;
    checkpoint::Manifest manifest;
    manifest.items = n;
    manifest.num_nodes = p;
    manifest.granularity = config_.partition_granularity;
    manifest.seed = config_.node.seed;
    manifest.expected_pairs = total_pairs;
    manifest.fingerprint = checkpoint::Journal::fingerprint(
        n, p, config_.partition_granularity, config_.node.seed);
    journal = std::make_unique<checkpoint::Journal>(
        *config_.checkpoint_store, config_.checkpoint_name);
    bool fresh = true;
    if (config_.resume) {
      const auto replay = checkpoint::Journal::replay(
          *config_.checkpoint_store, config_.checkpoint_name);
      if (replay.found && replay.has_manifest &&
          replay.manifest.fingerprint == manifest.fingerprint) {
        ck.torn_tail = replay.torn;
        if (replay.torn) {
          // Cut the tear so this run appends from a record boundary.
          checkpoint::Journal::truncate_to_valid(
              *config_.checkpoint_store, config_.checkpoint_name, replay);
        }
        ck.resumed = true;
        ck.records_replayed = replay.records;
        // Dedup the replayed state through a scratch ledger: a journal
        // written across a failover can record a pair twice (old and new
        // master), and completed regions overlap their own results.
        ResultLedger scratch(n, p);
        for (const auto& result : replay.results) {
          scratch.mark_recovered(result.left, result.right);
        }
        for (const auto& region : replay.completed_regions) {
          dnc::for_each_pair(region, [&](const dnc::Pair& pair) {
            scratch.mark_recovered(pair.left, pair.right);
          });
        }
        recovered = scratch.delivered_pairs();
        ck.pairs_recovered = recovered.size();
        fresh = false;
      }
    }
    if (fresh) journal->start_fresh(manifest);
  }

  InProcessTransport::Config tc;
  tc.control_message_size = config_.control_message_size;
  tc.compress_threshold = config_.peer_compress_threshold;
  tc.faults = config_.faults;
  tc.corrupt_rate = config_.frame_corrupt_rate;
  tc.corrupt_seed = config_.frame_corrupt_seed;
  InProcessTransport transport(p, tc);
  storage::SynchronizedStore shared_store(store);
  const std::uint64_t remaining_pairs = total_pairs - recovered.size();
  const auto done = std::make_shared<std::atomic<bool>>(remaining_pairs == 0);

  auto partition =
      dnc::partition_root(n, p, config_.partition_granularity);
  if (!recovered.empty()) {
    // Resume frontier: grant the full partition to its owners in a
    // scratch ledger, mark the recovered pairs delivered, and re-read
    // each node's share as coalesced undelivered row runs — only the
    // remainder is executed.
    ResultLedger scratch(n, p);
    for (NodeId id = 0; id < p; ++id) {
      for (const auto& region : partition[id]) {
        scratch.grant(id, region, /*reexecution=*/false);
      }
    }
    for (const dnc::Pair& pair : recovered) {
      scratch.mark_recovered(pair.left, pair.right);
    }
    for (NodeId id = 0; id < p; ++id) {
      partition[id] = scratch.undelivered_of(id);
    }
  }

  // Master failover needs a failure detector to hand the role over, so
  // it rides on the heartbeat/lease machinery.
  const bool failover = config_.master_failover && p > 1 &&
                        config_.heartbeat_interval_s > 0 &&
                        config_.lease_timeout_s > 0;
  std::atomic<std::uint64_t> delivered_this_run{0};

  // Mesh services. The master's completion hook sets the cluster-wide done
  // flag and wakes every node's steal waiters; no shutdown broadcast is
  // needed (and none is modelled in the simulator either). On multi-node
  // meshes the master additionally runs the failure model (DESIGN.md §12):
  // the initial partition seeds its re-execution ledger, victims report
  // steal transfers, and heartbeat leases feed its failure detector.
  // Per-node discrete-event streams (steals, deaths, re-grants, parks):
  // shared by each node's mesh layer and engine, drained into the trace
  // after the mesh joins (failover events can land after the engine has
  // already assembled its report). Declared before `meshes` so the logs
  // outlive the service threads that record into them.
  std::vector<std::unique_ptr<telemetry::EventLog>> event_logs(p);
  for (auto& log : event_logs) {
    log = std::make_unique<telemetry::EventLog>();
  }

  // Causal tracing (DESIGN.md §16): one span log and one black-box flight
  // ring per node, shared between the node's mesh layer and its engine.
  // Same lifetime rule as the event logs — declared before `meshes` so
  // service threads never outlive their sinks.
  const bool tracing = config_.trace_sample_n > 0;
  std::vector<std::unique_ptr<telemetry::FlightRecorder>> flights(p);
  std::vector<std::unique_ptr<telemetry::SpanLog>> span_logs(p);
  if (tracing) {
    for (NodeId id = 0; id < p; ++id) {
      if (config_.flight_recorder_entries > 0) {
        flights[id] = std::make_unique<telemetry::FlightRecorder>(
            config_.flight_recorder_entries);
      }
      span_logs[id] =
          std::make_unique<telemetry::SpanLog>(id, std::size_t{1} << 14,
                                               flights[id].get());
    }
  }
  // Black-box dump: write every node's last-K ring to the checkpoint
  // store. Wired as the CHECK-failure hook for the whole run (an
  // assertion anywhere flushes the rings before abort) and reused below
  // for death/failover dumps. The rings are lock-free, so dumping from a
  // failing thread is safe.
  std::uint64_t flight_dumps = 0;
  auto dump_flight = [&](NodeId id) {
    if (flights[id] == nullptr || config_.checkpoint_store == nullptr ||
        !config_.checkpoint_store->supports_write()) {
      return;
    }
    const std::string text = flights[id]->dump_json_lines();
    config_.checkpoint_store->put(
        "rocket.flightrec.node" + std::to_string(id),
        ByteBuffer(text.begin(), text.end()));
    ++flight_dumps;
  };
  if (tracing && config_.checkpoint_store != nullptr &&
      config_.checkpoint_store->supports_write()) {
    set_check_failure_hook([&flights, &p, this] {
      for (NodeId id = 0; id < p; ++id) {
        if (flights[id] == nullptr) continue;
        const std::string text = flights[id]->dump_json_lines();
        config_.checkpoint_store->put(
            "rocket.flightrec.node" + std::to_string(id),
            ByteBuffer(text.begin(), text.end()));
      }
    });
  }

  std::vector<std::unique_ptr<MeshNode>> meshes(p);
  for (NodeId id = 0; id < p; ++id) {
    MeshNode::Config mc;
    mc.id = id;
    mc.events = event_logs[id].get();
    mc.spans = span_logs[id].get();
    mc.flight = flights[id].get();
    mc.trace_sample_n = config_.trace_sample_n;
    mc.snapshot_interval_s = config_.snapshot_interval_s;
    mc.num_workers =
        static_cast<std::uint32_t>(config_.node.devices.size());
    mc.hop_limit = config_.hop_limit;
    mc.max_chain_hops = config_.max_chain_hops;
    mc.seed = config_.node.seed;
    if (p > 1) {
      mc.heartbeat_interval_s = config_.heartbeat_interval_s;
      if (config_.heartbeat_interval_s > 0) {
        mc.lease_timeout_s = config_.lease_timeout_s;
      }
      mc.fetch_timeout_s = config_.fetch_timeout_s;
      mc.max_fetch_retries = config_.max_fetch_retries;
      mc.export_leases = true;
    }
    // Grey-failure knobs ride on every node: health verdicts are a master
    // duty, and with failover any node may become the master mid-run.
    mc.degraded_rate_fraction = config_.degraded_rate_fraction;
    mc.suspect_intervals = config_.suspect_intervals;
    mc.recover_rate_fraction = config_.recover_rate_fraction;
    mc.recover_intervals = config_.recover_intervals;
    mc.health_ewma_alpha = config_.health_ewma_alpha;
    mc.speculation_regions_per_interval =
        config_.speculation_regions_per_interval;
    // With failover EVERY node carries the master duties — any of them
    // may adopt the role mid-run; without it only node 0 does.
    if (id == 0 || failover) {
      mc.expected_pairs = total_pairs;
      mc.on_result = [&on_result,
                      &delivered_this_run](const runtime::PairResult& r) {
        delivered_this_run.fetch_add(1, std::memory_order_relaxed);
        if (on_result) on_result(r);
      };
      mc.on_complete = [&done, &meshes] {
        done->store(true, std::memory_order_release);
        for (auto& mesh : meshes) {
          if (mesh) mesh->wake();
        }
      };
      // The ledger also backs the journal's exactly-once replay on a
      // single node, so journalling forces it on even at p == 1.
      if (p > 1 || journal != nullptr) {
        mc.ledger_items = n;
        mc.initial_grants = partition;
      }
      mc.failover = failover;
      mc.journal = journal.get();
      mc.recovered = recovered;
      mc.result_batch_pairs = std::max(1u, config_.journal_batch_pairs);
      mc.on_snapshot = [this](const telemetry::ClusterSnapshot& snap) {
        {
          std::lock_guard<std::mutex> lock(snapshot_mutex_);
          latest_snapshot_ = snap;
        }
        if (config_.on_cluster_snapshot) config_.on_cluster_snapshot(snap);
      };
    }
    meshes[id] = std::make_unique<MeshNode>(std::move(mc), transport, done);
  }
  for (auto& mesh : meshes) mesh->start();

  std::vector<runtime::NodeRuntime::Report> node_reports(p);
  std::vector<std::exception_ptr> errors(p);
  const auto wall_start = std::chrono::steady_clock::now();
  const double trace_window_start = trace_now();

  std::vector<std::thread> node_threads;
  node_threads.reserve(p);
  for (NodeId id = 0; id < p; ++id) {
    node_threads.emplace_back([&, id] {
      try {
        runtime::NodeRuntime::Config ncfg = config_.node;
        ncfg.event_log = event_logs[id].get();
        ncfg.span_log = span_logs[id].get();
        ncfg.trace_sample_n = config_.trace_sample_n;
        // Grey-failure straggler injection: the designated slow node runs
        // its kernels stretched and (optionally) sees extra object-store
        // read latency — alive and correct, just slow.
        storage::ObjectStore* node_store = &shared_store;
        std::optional<storage::ThrottledStore> slow_store;
        if (id == config_.slow_node) {
          if (config_.slow_factor > 1.0) {
            ncfg.kernel_slowdown = config_.slow_factor;
          }
          if (config_.slow_store_latency_us > 0) {
            slow_store.emplace(shared_store, config_.slow_store_latency_us);
            node_store = &*slow_store;
          }
        }
        runtime::NodeRuntime rt(std::move(ncfg));
        MeshNode& mesh = *meshes[id];
        runtime::MeshPort port;
        port.regions = partition[id];
        port.remote_steal = [&mesh](std::uint32_t worker) {
          return mesh.remote_steal(worker);
        };
        port.global_done = [&mesh] { return mesh.global_done(); };
        if (config_.distributed_cache && p > 1) port.peer_fetch = &mesh;
        port.register_probe = [&mesh](runtime::HostCacheProbe* probe) {
          mesh.register_probe(probe);
        };
        port.register_exporter = [&mesh](steal::StealExporter* exporter) {
          mesh.register_exporter(exporter);
        };
        port.register_stats = [&mesh](telemetry::NodeStatsFn fn) {
          mesh.register_stats(std::move(fn));
        };
        // Shared (not per-copy) sequence: std::function copies must not
        // fork the sampling stream.
        auto result_seq = std::make_shared<std::atomic<std::uint64_t>>(0);
        node_reports[id] = rt.run_partition(
            app, *node_store,
            [&transport, &meshes, &span_logs, this, id,
             result_seq](const runtime::PairResult& r) {
              // Deliver-hop sampling (§16): every Nth result by seeded
              // hash of a per-node sequence roots a result.deliver span
              // here; the master records the arrival child, giving the
              // worker→master flow arrow.
              telemetry::SpanContext ctx;
              if (config_.trace_sample_n > 0 && span_logs[id] != nullptr) {
                ctx = telemetry::make_trace(
                    config_.node.seed,
                    telemetry::span_mix(0x72736c74 /* 'rslt' */ ^ id) ^
                        result_seq->fetch_add(1, std::memory_order_relaxed),
                    config_.trace_sample_n);
                if (ctx.sampled()) {
                  const double now = trace_now();
                  span_logs[id]->record(ctx, telemetry::SpanPhase::kDeliver,
                                        now, now);
                }
              }
              // Route to the CURRENT master: after a failover the
              // adopter aggregates, and anything still in flight to the
              // corpse is covered by its conservative re-grant.
              transport.send(id, meshes[id]->current_master(),
                             net::Tag::kResult, ResultMsg{r, ctx});
            },
            port);
      } catch (...) {
        errors[id] = std::current_exception();
        // Unblock the rest of the cluster; a node failure must not hang
        // the run (the caller sees the exception below).
        done->store(true, std::memory_order_release);
        for (auto& mesh : meshes) {
          if (mesh) mesh->wake();
        }
      }
    });
  }
  // Termination watchdog for chaos runs: completion is signalled by a
  // master, so a run where EVERY node dies — or where the master dies
  // with failover off — would otherwise hang on workers polling
  // remote_steal forever. Kill schedules are test/demo-only, so the
  // watchdog only exists when one is configured.
  std::thread watchdog;
  std::atomic<bool> watchdog_stop{false};
  if (!config_.faults.empty()) {
    watchdog = std::thread([&] {
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (done->load(std::memory_order_acquire)) continue;
        bool all_down = true;
        for (NodeId k = 0; k < p; ++k) {
          if (!transport.is_down(k)) {
            all_down = false;
            break;
          }
        }
        const bool master_unrecoverable = !failover && transport.is_down(0);
        if (all_down || master_unrecoverable) {
          done->store(true, std::memory_order_release);
          for (auto& mesh : meshes) {
            if (mesh) mesh->wake();
          }
        }
      }
    });
  }

  for (auto& t : node_threads) t.join();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count();

  watchdog_stop.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();
  transport.close();
  for (auto& mesh : meshes) mesh->join();
  // All recorders are quiescent from here. Un-register the CHECK hook
  // before anything can unwind — it captures this frame.
  const double trace_window_end = trace_now();
  if (tracing) set_check_failure_hook(nullptr);
  std::uint64_t spans_aborted = 0;
  for (NodeId id = 0; id < p; ++id) {
    if (span_logs[id] != nullptr) {
      // Satellite-3 invariant: whatever a killed node (or a fetch that
      // never completed) left open is closed now with the aborted flag —
      // a finished run leaks no spans.
      spans_aborted += span_logs[id]->abort_open(trace_window_end);
    }
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  Report report;
  // Pairs this run actually accounted for: journal-recovered plus
  // freshly delivered. Equal to total_pairs in any completed run;
  // smaller only when an unsurvivable chaos schedule cut the run short.
  report.pairs = recovered.size() +
                 delivered_this_run.load(std::memory_order_acquire);
  report.wall_seconds = wall;
  report.traffic = transport.counters();
  report.corrupted_frames = transport.corrupted_frames();
  if (journal != nullptr) ck.records_appended = journal->records_appended();
  report.checkpoint = ck;
  report.node_traffic.reserve(p);
  for (NodeId id = 0; id < p; ++id) {
    report.loads += node_reports[id].loads;
    report.peer_loads += node_reports[id].peer_loads;
    report.remote_steals += node_reports[id].steal.remote_steals;
    report.directory += meshes[id]->directory_stats();
    report.peer_cache += meshes[id]->peer_stats();
    report.failover += meshes[id]->failover_stats();
    report.host_cache += node_reports[id].host_cache;
    report.cache_fast_hits += node_reports[id].cache_fast_hits;
    report.prefetch_hits += node_reports[id].prefetch_hits;
    report.stall_seconds += node_reports[id].stall_seconds;
    report.load_retries += node_reports[id].load_retries;
    report.failed_loads += node_reports[id].failed_loads;
    report.metrics += node_reports[id].metrics;
    report.metrics += meshes[id]->metrics_snapshot();
    report.node_traffic.push_back(transport.node_counters(id));
    // Re-drain the shared event log: the engine's report copy predates
    // mesh teardown, and failover events (death verdicts, re-grants) can
    // land on service threads after the engine has drained.
    if (config_.node.trace) {
      node_reports[id].trace.events = event_logs[id]->events();
    }
    // Same staleness rule for causal spans: mesh-side closes (steal
    // serves, the abort sweep above) post-date the engine's copy.
    if (config_.node.trace && span_logs[id] != nullptr) {
      node_reports[id].trace.causal_spans = span_logs[id]->records();
    }
  }
  report.node_deaths = report.failover.node_deaths;
  report.regions_reexecuted = report.failover.regions_reexecuted;
  report.duplicate_results_dropped =
      report.failover.duplicate_results_dropped;
  report.master_failovers = report.failover.master_failovers;
  report.regions_speculated = report.failover.regions_speculated;
  report.nodes_degraded = report.failover.nodes_degraded;
  report.nodes_recovered = report.failover.nodes_recovered;
  report.steals_avoided_degraded = report.failover.steals_avoided_degraded;
  report.peer_retries = report.peer_cache.retries;

  // --- causal tracing epilogue (DESIGN.md §16) ---
  report.spans_aborted = spans_aborted;
  // Black-box dumps: every dead node's ring; every ring when the master
  // role moved (the post-mortem question is then "what did each node see
  // around the handover").
  for (NodeId id = 0; id < p; ++id) {
    if (transport.is_down(id) || report.master_failovers > 0) {
      dump_flight(id);
    }
  }
  report.flight_dumps = flight_dumps;
  // Critical-path attribution over every sampled span of the run. Always
  // computed: with tracing off the span set is empty and the whole window
  // is attributed to idle, so the report block is schema-stable.
  std::vector<telemetry::SpanRecord> all_spans;
  for (NodeId id = 0; id < p; ++id) {
    if (span_logs[id] == nullptr) continue;
    const auto spans = span_logs[id]->records();
    all_spans.insert(all_spans.end(), spans.begin(), spans.end());
  }
  report.critical_path = telemetry::analyze_critical_path(
      all_spans, trace_window_start, trace_window_end);

  report.nodes = std::move(node_reports);
  return report;
}

}  // namespace rocket::mesh

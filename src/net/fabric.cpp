#include "net/fabric.hpp"

namespace rocket::net {

// Fabric<> is header-only (templated on the message body); this TU anchors
// the module and provides the tag names used in traffic reports.

const char* tag_name(Tag tag) {
  switch (tag) {
    case Tag::kCacheRequest: return "cache-request";
    case Tag::kCacheForward: return "cache-forward";
    case Tag::kCacheData: return "cache-data";
    case Tag::kCacheFailure: return "cache-failure";
    case Tag::kStealRequest: return "steal-request";
    case Tag::kStealReply: return "steal-reply";
    case Tag::kResult: return "result";
    case Tag::kControl: return "control";
    case Tag::kCount: break;
  }
  return "unknown";
}

}  // namespace rocket::net

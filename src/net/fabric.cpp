#include "net/fabric.hpp"

namespace rocket::net {

// Fabric<> is header-only (templated on the message body); this TU anchors
// the module. The tag taxonomy and traffic counters shared with the live
// mesh transport live in net/tag.{hpp,cpp}.

}  // namespace rocket::net

#pragma once

// Message classes and traffic accounting shared by every cluster fabric.
//
// Extracted from the simulated fabric so the live mesh transport
// (src/mesh/) and the virtual-time interconnect (net/fabric.hpp) record
// traffic through the same tag taxonomy — a live run's per-tag message and
// byte counts are directly comparable to a simulated run's.

#include <cstdint>

#include "common/units.hpp"

namespace rocket::net {

using NodeId = std::uint32_t;

/// Message classes for traffic accounting.
enum class Tag : std::uint32_t {
  kCacheRequest = 0,   // A → mediator: "who has item i?"
  kCacheForward = 1,   // mediator/candidate → next candidate
  kCacheData = 2,      // candidate → A: the item payload
  kCacheFailure = 3,   // exhausted chain → A
  kStealRequest = 4,   // idle worker → victim
  kStealReply = 5,     // victim → thief (task or empty)
  kResult = 6,         // worker → master (result delivery)
  kControl = 7,        // everything else
  kHeartbeat = 8,      // node → master: liveness lease renewal
  kFailover = 9,       // death verdicts, lease transfers, re-grants
  kTelemetry = 10,     // node → master: metrics snapshot stream
  kLedgerSync = 11,    // master → standby: aggregation-state mirror
  kCount
};

/// Human-readable tag name for traffic reports.
const char* tag_name(Tag tag);

struct TrafficCounters {
  struct PerTag {
    std::uint64_t messages = 0;
    Bytes bytes = 0;      // on-the-wire (post-compression) bytes
    Bytes raw_bytes = 0;  // pre-compression payload bytes (== bytes when
                          // the tag is never compressed)

    PerTag& operator+=(const PerTag& other) {
      messages += other.messages;
      bytes += other.bytes;
      raw_bytes += other.raw_bytes;
      return *this;
    }
  };
  PerTag per_tag[static_cast<std::size_t>(Tag::kCount)] = {};

  void record(Tag tag, Bytes bytes) { record(tag, bytes, bytes); }
  void record(Tag tag, Bytes bytes, Bytes raw_bytes) {
    auto& t = per_tag[static_cast<std::size_t>(tag)];
    ++t.messages;
    t.bytes += bytes;
    t.raw_bytes += raw_bytes;
  }
  std::uint64_t total_messages() const {
    std::uint64_t sum = 0;
    for (const auto& t : per_tag) sum += t.messages;
    return sum;
  }
  Bytes total_bytes() const {
    Bytes sum = 0;
    for (const auto& t : per_tag) sum += t.bytes;
    return sum;
  }
  Bytes total_raw_bytes() const {
    Bytes sum = 0;
    for (const auto& t : per_tag) sum += t.raw_bytes;
    return sum;
  }

  /// Element-wise merge — how per-node tables fold into a cluster table.
  TrafficCounters& operator+=(const TrafficCounters& other) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(Tag::kCount); ++i) {
      per_tag[i] += other.per_tag[i];
    }
    return *this;
  }
};

}  // namespace rocket::net

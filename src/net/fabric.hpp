#pragma once

// Simulated cluster interconnect.
//
// Models the message layer Rocket needs from Ibis (paper §4): typed
// point-to-point messages between p nodes over a full-bisection fabric
// (DAS-5: 56 Gb/s InfiniBand FDR). Control messages cost one network
// latency; bulk messages additionally serialise through the *sender's* NIC,
// which is modelled as a processor-sharing link so concurrent outgoing
// transfers contend realistically.
//
// The fabric is templated on the message body so each protocol layer keeps
// its own strongly-typed envelopes; traffic accounting (messages/bytes per
// tag) is shared with the live mesh transport and lives in net/tag.hpp.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/units.hpp"
#include "net/tag.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rocket::net {

struct FabricConfig {
  double latency = 1.5e-6;                    // per-message one-way latency
  Bandwidth link_bandwidth = gbit_per_sec(56);  // per-NIC serialisation rate
  Bytes control_message_size = 128;           // wire size of control messages
};

template <typename Body>
class Fabric {
 public:
  struct Envelope {
    NodeId from;
    NodeId to;
    Tag tag;
    Body body;
  };

  Fabric(sim::Simulation& sim, std::uint32_t num_nodes, FabricConfig config)
      : sim_(&sim), config_(config) {
    nics_.reserve(num_nodes);
    mailboxes_.reserve(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      nics_.push_back(
          std::make_unique<sim::SharedBandwidth>(sim, config.link_bandwidth));
      mailboxes_.push_back(std::make_unique<sim::Mailbox<Envelope>>(sim));
    }
  }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(mailboxes_.size());
  }

  /// Fire-and-forget control message: latency only (plus accounting).
  /// Local messages (src == dst) are delivered with zero latency.
  void send(NodeId src, NodeId dst, Tag tag, Body body) {
    counters_.record(tag, config_.control_message_size);
    const double latency = (src == dst) ? 0.0 : config_.latency;
    // Capture by value; deliver through the event queue.
    sim_->schedule_fn(latency, [this, src, dst, tag, body = std::move(body)]() mutable {
      mailboxes_[dst]->send(Envelope{src, dst, tag, std::move(body)});
    });
  }

  /// Awaitable bulk send: serialises `payload_bytes` through the sender's
  /// NIC, then delivers after the propagation latency. The co_await
  /// completes when the message has been *handed to the network* (i.e.
  /// after serialisation), modelling a send that frees the sender's buffer.
  sim::Process send_bulk(NodeId src, NodeId dst, Tag tag, Body body,
                         Bytes payload_bytes) {
    counters_.record(tag, payload_bytes + config_.control_message_size);
    if (src != dst) {
      co_await nics_[src]->transfer(payload_bytes);
    }
    const double latency = (src == dst) ? 0.0 : config_.latency;
    sim_->schedule_fn(latency, [this, src, dst, tag, body = std::move(body)]() mutable {
      mailboxes_[dst]->send(Envelope{src, dst, tag, std::move(body)});
    });
  }

  /// Awaitable pure transfer (no message delivery): used when the receiving
  /// coroutine is already waiting and just needs the time cost of moving
  /// `payload_bytes` from src's NIC.
  sim::Process transfer_cost(NodeId src, NodeId dst, Tag tag,
                             Bytes payload_bytes) {
    counters_.record(tag, payload_bytes);
    if (src != dst) {
      co_await nics_[src]->transfer(payload_bytes);
      co_await sim::delay(config_.latency);
    }
  }

  /// Awaitable control-message cost (latency only, plus accounting); the
  /// protocol state transition happens in the caller.
  sim::Process control_cost(NodeId src, NodeId dst, Tag tag) {
    counters_.record(tag, config_.control_message_size);
    if (src != dst) {
      co_await sim::delay(config_.latency);
    }
  }

  sim::Mailbox<Envelope>& mailbox(NodeId node) { return *mailboxes_[node]; }
  sim::SharedBandwidth& nic(NodeId node) { return *nics_[node]; }

  const TrafficCounters& counters() const { return counters_; }
  const FabricConfig& config() const { return config_; }

 private:
  sim::Simulation* sim_;
  FabricConfig config_;
  std::vector<std::unique_ptr<sim::SharedBandwidth>> nics_;
  std::vector<std::unique_ptr<sim::Mailbox<Envelope>>> mailboxes_;
  TrafficCounters counters_;
};

}  // namespace rocket::net

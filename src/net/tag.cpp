#include "net/tag.hpp"

namespace rocket::net {

const char* tag_name(Tag tag) {
  switch (tag) {
    case Tag::kCacheRequest: return "cache-request";
    case Tag::kCacheForward: return "cache-forward";
    case Tag::kCacheData: return "cache-data";
    case Tag::kCacheFailure: return "cache-failure";
    case Tag::kStealRequest: return "steal-request";
    case Tag::kStealReply: return "steal-reply";
    case Tag::kResult: return "result";
    case Tag::kControl: return "control";
    case Tag::kHeartbeat: return "heartbeat";
    case Tag::kFailover: return "failover";
    case Tag::kTelemetry: return "telemetry";
    case Tag::kLedgerSync: return "ledger-sync";
    case Tag::kCount: break;
  }
  return "unknown";
}

}  // namespace rocket::net

#include "cache/sharded_slot_cache.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace rocket::cache {

namespace {

/// Statistic bump kept off the lock-prefixed path: a plain load+store on
/// the atomic (no RMW). Concurrent bumps of the same slot's counter can
/// drop an increment — fast-hit counts are throughput telemetry, not
/// correctness state, and the hot path must not pay a second interlocked
/// instruction per pin. (shards = 1 exactness is unaffected: the fast
/// path is disabled there.)
inline void bump_relaxed(std::atomic<std::uint64_t>& counter) {
  counter.store(counter.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

// Word layout: [ item:32 | status:2 | inner:15 | excess:15 ].
constexpr std::uint64_t kExcessMask = (1ULL << 15) - 1;
constexpr std::uint64_t kInnerShift = 15;
constexpr std::uint64_t kInnerMask = ((1ULL << 15) - 1) << kInnerShift;
constexpr std::uint64_t kStatusShift = 30;
constexpr std::uint64_t kItemShift = 32;
constexpr std::uint32_t kCounterMax = (1u << 15) - 1;

constexpr std::uint64_t pack_word(ItemId item, SlotCache::Status status,
                                  std::uint32_t inner) {
  return (static_cast<std::uint64_t>(item) << kItemShift) |
         (static_cast<std::uint64_t>(status) << kStatusShift) |
         (static_cast<std::uint64_t>(inner) << kInnerShift);
}

constexpr ItemId word_item(std::uint64_t w) {
  return static_cast<ItemId>(w >> kItemShift);
}
constexpr SlotCache::Status word_status(std::uint64_t w) {
  return static_cast<SlotCache::Status>((w >> kStatusShift) & 0x3);
}
constexpr std::uint32_t word_inner(std::uint64_t w) {
  return static_cast<std::uint32_t>((w & kInnerMask) >> kInnerShift);
}
constexpr std::uint32_t word_excess(std::uint64_t w) {
  return static_cast<std::uint32_t>(w & kExcessMask);
}

}  // namespace

ShardedSlotCache::ShardedSlotCache(Config config)
    : config_(std::move(config)) {
  // Every shard needs at least two slots (a per-pair job may land both of
  // its pins in one shard); shards beyond that would own empty caches.
  const std::uint32_t max_shards =
      std::max(1u, config_.num_slots / 2);
  const std::uint32_t n_shards =
      std::max(1u, std::min(config_.shards, max_shards));
  config_.shards = n_shards;
  fast_path_ = n_shards > 1 && config_.max_items > 0;

  num_slots_ = config_.num_slots;
  const std::uint32_t per_shard = config_.num_slots / n_shards;
  std::uint32_t remainder = config_.num_slots % n_shards;
  min_shard_slots_ = per_shard;

  words_ = std::vector<std::atomic<std::uint64_t>>(num_slots_);
  for (auto& w : words_) {
    w.store(pack_word(kNoItem, SlotCache::Status::kEmpty, 0),
            std::memory_order_relaxed);
  }
  fast_hits_by_slot_ = std::vector<std::atomic<std::uint64_t>>(num_slots_);
  for (auto& c : fast_hits_by_slot_) c.store(0, std::memory_order_relaxed);
  if (fast_path_) {
    hints_ = std::vector<std::atomic<SlotId>>(config_.max_items);
    for (auto& h : hints_) h.store(kInvalidSlot, std::memory_order_relaxed);
  }

  std::uint32_t base = 0;
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    const std::uint32_t slots = per_shard + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    shard->base = base;
    shard->slots = slots;
    shard->cache = std::make_unique<SlotCache>(SlotCache::Config{
        slots, config_.slot_size,
        n_shards == 1 ? config_.name
                      : config_.name + "/s" + std::to_string(s)});
    Shard* raw = shard.get();
    shard->cache->set_slot_observer(
        [this, raw](SlotId local) { sync_word(*raw, local); });
    base += slots;
    shards_.push_back(std::move(shard));
  }
}

std::uint32_t ShardedSlotCache::shard_index_of_slot(SlotId slot) const {
  // Shards differ in size by at most one slot; a short reverse scan over
  // the base offsets resolves the owner (≤ shards comparisons, shards is
  // small and the array is hot).
  for (std::size_t s = shards_.size(); s-- > 0;) {
    if (slot >= shards_[s]->base) return static_cast<std::uint32_t>(s);
  }
  ROCKET_CHECK(false, "slot id out of range");
  return 0;
}

ShardedSlotCache::Shard& ShardedSlotCache::shard_for_slot(SlotId slot) {
  return *shards_[shard_index_of_slot(slot)];
}

const ShardedSlotCache::Shard& ShardedSlotCache::shard_for_slot(
    SlotId slot) const {
  return const_cast<ShardedSlotCache*>(this)->shard_for_slot(slot);
}

void ShardedSlotCache::sync_word(Shard& shard, SlotId local) {
  const SlotId gslot = shard.base + local;
  const ItemId item = shard.cache->item_of(local);
  const auto status = shard.cache->status_of(local);
  const std::uint32_t readers = shard.cache->readers_of(local);
  ROCKET_CHECK(readers <= kCounterMax, "reader count overflows the word");
  const std::uint64_t base = pack_word(item, status, readers);
  auto& word = words_[gslot];
  std::uint64_t cur = word.load(std::memory_order_relaxed);
  // Preserve concurrent fast-path excess pins (they only exist while the
  // policy already counts a reader, so eviction cannot race this store).
  while (!word.compare_exchange_weak(cur, base | (cur & kExcessMask),
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
  if (fast_path_ && item != kNoItem && status == SlotCache::Status::kRead &&
      item < hints_.size()) {
    hints_[item].store(gslot, std::memory_order_release);
  }
}

std::optional<SlotId> ShardedSlotCache::fast_pin(ItemId item) {
  if (!fast_path_ || item >= hints_.size()) return std::nullopt;
  const SlotId gslot = hints_[item].load(std::memory_order_acquire);
  if (gslot == kInvalidSlot || gslot >= words_.size()) return std::nullopt;
  auto& word = words_[gslot];
  std::uint64_t cur = word.load(std::memory_order_acquire);
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (word_item(cur) != item ||
        word_status(cur) != SlotCache::Status::kRead ||
        word_inner(cur) == 0 || word_excess(cur) >= kCounterMax) {
      return std::nullopt;  // miss / unpinned / full: take the shard lock
    }
    if (word.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return gslot;
    }
  }
  return std::nullopt;  // contended: fall back to the shard lock
}

bool ShardedSlotCache::fast_release(SlotId gslot) {
  if (!fast_path_) return false;
  auto& word = words_[gslot];
  std::uint64_t cur = word.load(std::memory_order_acquire);
  while (word_excess(cur) > 0) {
    if (word.compare_exchange_weak(cur, cur - 1, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

void ShardedSlotCache::reconcile_excess(Shard& shard, SlotId gslot) {
  auto& word = words_[gslot];
  std::uint64_t cur = word.load(std::memory_order_acquire);
  while (word_excess(cur) > 0) {
    const std::uint32_t excess = word_excess(cur);
    if (word.compare_exchange_weak(cur, cur - excess,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      shard.cache->pin_existing(gslot - shard.base, excess);
      return;
    }
  }
}

void ShardedSlotCache::locked_release(Shard& shard, SlotId gslot) {
  const SlotId local = gslot - shard.base;
  auto& word = words_[gslot];
  for (;;) {
    reconcile_excess(shard, gslot);
    // More pins remain after this release: the slot cannot become
    // evictable, so lock-free pins may keep landing — nothing to fence.
    if (shard.cache->readers_of(local) > 1) break;
    // Final pin. The policy release below will make the slot evictable,
    // but the word still advertises inner >= 1 until the slot observer
    // rewrites it — a lock-free pin could sneak into that window and end
    // up pinning an eviction victim. Close the window first: publish
    // inner = 0 while atomically asserting excess == 0. A CAS failure
    // means a fast pin just landed; loop to fold it into the policy
    // (after which readers > 1 and the fence is unnecessary).
    std::uint64_t cur = word.load(std::memory_order_acquire);
    if (word_excess(cur) > 0) continue;
    const std::uint64_t fenced =
        pack_word(word_item(cur), word_status(cur), 0);
    if (word.compare_exchange_strong(cur, fenced, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      break;
    }
  }
  shard.cache->release(local);
}

SlotCache::Callback ShardedSlotCache::wrap_callback(Callback cb,
                                                    std::uint32_t base) {
  if (!cb) return {};
  return [cb = std::move(cb), base](Grant g) {
    if (g.slot != kInvalidSlot) g.slot += base;
    cb(g);
  };
}

ShardedSlotCache::Grant ShardedSlotCache::acquire(ItemId item, Callback cb,
                                                  AllocPriority priority) {
  if (const auto pinned = fast_pin(item)) {
    bump_relaxed(fast_hits_by_slot_[*pinned]);
    return Grant{Outcome::kHit, *pinned};
  }
  Shard& shard = shard_for_item(item);
  std::scoped_lock lock(shard.mutex);
  Grant g = shard.cache->acquire(item, wrap_callback(std::move(cb),
                                                     shard.base),
                                 priority);
  if (g.slot != kInvalidSlot) g.slot += shard.base;
  return g;
}

std::vector<ShardedSlotCache::Grant> ShardedSlotCache::acquire_batch(
    const std::vector<ItemId>& items, BatchCallback cb,
    AllocPriority priority) {
  std::vector<Grant> grants(items.size(),
                            Grant{Outcome::kQueued, kInvalidSlot});
  auto shared_cb =
      cb ? std::make_shared<BatchCallback>(std::move(cb)) : nullptr;

  // Pass 1: lock-free pins for the already-hot part of the working set.
  // Pass 2: group the rest by shard, ascending, one lock per shard.
  const std::uint32_t n_shards = num_shards();
  std::vector<std::vector<std::size_t>> by_shard(n_shards);
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (const auto pinned = fast_pin(items[k])) {
      grants[k] = Grant{Outcome::kHit, *pinned};
      bump_relaxed(fast_hits_by_slot_[*pinned]);
      continue;
    }
    by_shard[shard_of(items[k])].push_back(k);
  }

  for (std::uint32_t s = 0; s < n_shards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    // Queued sub-batch entries resolve after this call returns: share the
    // index mapping with the callback wrapper.
    auto indices = std::make_shared<std::vector<std::size_t>>(
        std::move(by_shard[s]));
    std::vector<ItemId> sub;
    sub.reserve(indices->size());
    for (const auto k : *indices) sub.push_back(items[k]);
    BatchCallback sub_cb;
    if (shared_cb) {
      sub_cb = [shared_cb, indices, base = shard.base](std::size_t j,
                                                       Grant g) {
        if (g.slot != kInvalidSlot) g.slot += base;
        (*shared_cb)((*indices)[j], g);
      };
    }
    std::scoped_lock lock(shard.mutex);
    auto sub_grants =
        shard.cache->acquire_batch(sub, std::move(sub_cb), priority);
    for (std::size_t j = 0; j < sub_grants.size(); ++j) {
      Grant g = sub_grants[j];
      if (g.slot != kInvalidSlot) g.slot += shard.base;
      grants[(*indices)[j]] = g;
    }
  }
  return grants;
}

void ShardedSlotCache::publish(SlotId slot) {
  Shard& shard = shard_for_slot(slot);
  std::scoped_lock lock(shard.mutex);
  shard.cache->publish(slot - shard.base);
}

void ShardedSlotCache::abort(SlotId slot) {
  Shard& shard = shard_for_slot(slot);
  std::scoped_lock lock(shard.mutex);
  shard.cache->abort(slot - shard.base);
}

void ShardedSlotCache::release(SlotId slot) {
  if (fast_release(slot)) return;
  Shard& shard = shard_for_slot(slot);
  std::scoped_lock lock(shard.mutex);
  locked_release(shard, slot);
}

void ShardedSlotCache::release_batch(const std::vector<SlotId>& slots) {
  const std::uint32_t n_shards = num_shards();
  std::vector<std::vector<SlotId>> by_shard(n_shards);
  for (const SlotId slot : slots) {
    if (fast_release(slot)) continue;
    by_shard[shard_index_of_slot(slot)].push_back(slot);
  }
  for (std::uint32_t s = 0; s < n_shards; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::scoped_lock lock(shard.mutex);
    for (const SlotId slot : by_shard[s]) {
      locked_release(shard, slot);
    }
  }
}

std::optional<SlotId> ShardedSlotCache::try_pin(ItemId item) {
  if (const auto pinned = fast_pin(item)) {
    bump_relaxed(shard_for_item(item).fast_probe_hits);
    return pinned;
  }
  Shard& shard = shard_for_item(item);
  std::scoped_lock lock(shard.mutex);
  const auto pin = shard.cache->try_pin(item);
  if (!pin) return std::nullopt;
  return *pin + shard.base;
}

bool ShardedSlotCache::contains(ItemId item) const {
  const Shard& shard = *shards_[shard_of(item)];
  std::scoped_lock lock(shard.mutex);
  return shard.cache->contains(item);
}

bool ShardedSlotCache::readable(ItemId item) const {
  const Shard& shard = *shards_[shard_of(item)];
  std::scoped_lock lock(shard.mutex);
  return shard.cache->readable(item);
}

CacheStats ShardedSlotCache::stats() const {
  CacheStats total;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    total += shard_stats(s);
  }
  return total;
}

CacheStats ShardedSlotCache::shard_stats(std::uint32_t s) const {
  const Shard& shard = *shards_[s];
  std::scoped_lock lock(shard.mutex);
  CacheStats out = shard.cache->stats();
  for (SlotId g = shard.base; g < shard.base + shard.slots; ++g) {
    out.hits += fast_hits_by_slot_[g].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t ShardedSlotCache::probe_hits() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    total += shard->cache->probe_hits() +
             shard->fast_probe_hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t ShardedSlotCache::probe_misses() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    total += shard->cache->probe_misses();
  }
  return total;
}

std::uint64_t ShardedSlotCache::fast_hits() const {
  std::uint64_t total = 0;
  for (const auto& c : fast_hits_by_slot_) {
    total += c.load(std::memory_order_relaxed);
  }
  for (const auto& shard : shards_) {
    total += shard->fast_probe_hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint32_t ShardedSlotCache::resident_items() const {
  std::uint32_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    total += shard->cache->resident_items();
  }
  return total;
}

void ShardedSlotCache::check_invariants() const {
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    shard->cache->check_invariants();
    for (SlotId local = 0; local < shard->cache->num_slots(); ++local) {
      const std::uint64_t w =
          words_[shard->base + local].load(std::memory_order_acquire);
      ROCKET_CHECK(word_excess(w) == 0,
                   "fast-path excess pins outstanding at quiescence");
      ROCKET_CHECK(word_item(w) == shard->cache->item_of(local),
                   "fast-path word item out of sync");
      ROCKET_CHECK(word_status(w) == shard->cache->status_of(local),
                   "fast-path word status out of sync");
      ROCKET_CHECK(word_inner(w) == shard->cache->readers_of(local),
                   "fast-path word reader count out of sync");
    }
  }
}

}  // namespace rocket::cache

#include "cache/slot_cache.hpp"

#include <algorithm>
#include <memory>

#include "common/log.hpp"

namespace rocket::cache {

void SlotCache::trace(const char* op, ItemId item, SlotId slot) {
  if (trace_item_ == kNoItem) return;
  if (item != trace_item_ &&
      (slot == kInvalidSlot || slots_[slot].item != trace_item_)) {
    return;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s item=%d slot=%d readers=%u", op,
                item == kNoItem ? -1 : static_cast<int>(item),
                slot == kInvalidSlot ? -1 : static_cast<int>(slot),
                slot == kInvalidSlot ? 0 : slots_[slot].readers);
  trace_log_.emplace_back(buf);
}

SlotCache::SlotCache(Config config) : config_(std::move(config)) {
  slots_.resize(config_.num_slots);
  for (SlotId id = 0; id < config_.num_slots; ++id) {
    push_lru_back(id);
  }
}

void SlotCache::unlink_lru(Slot& slot) {
  if (slot.in_lru) {
    lru_.erase(slot.lru_it);
    slot.in_lru = false;
  }
}

void SlotCache::push_lru_back(SlotId id) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(!slot.in_lru, "slot already in LRU list");
  slot.lru_it = lru_.insert(lru_.end(), id);
  slot.in_lru = true;
}

void SlotCache::push_lru_front(SlotId id) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(!slot.in_lru, "slot already in LRU list");
  slot.lru_it = lru_.insert(lru_.begin(), id);
  slot.in_lru = true;
}

SlotId SlotCache::allocate_for(ItemId item) {
  // Prefer an EMPTY slot over evicting live data: walk from the cold end
  // and take the first empty one within a short prefix, else take the
  // coldest. (EMPTY slots are pushed to the front on abort, so in practice
  // the front element is the right victim; the scan is a safety net.)
  if (lru_.empty()) return kInvalidSlot;
  const SlotId victim = lru_.front();
  Slot& slot = slots_[victim];
  unlink_lru(slot);
  if (slot.status == Status::kRead) {
    ROCKET_CHECK(slot.readers == 0, "evicting a pinned slot");
    trace("evict", slot.item, victim);
    index_.erase(slot.item);
    ++stats_.evictions;
    --resident_;
  }
  slot.item = item;
  slot.status = Status::kWrite;
  slot.readers = 0;
  index_[item] = victim;
  ++stats_.fills;
  notify(victim);
  return victim;
}

SlotCache::Grant SlotCache::acquire(ItemId item, Callback cb,
                                    AllocPriority priority) {
  const auto it = index_.find(item);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    if (slot.status == Status::kRead) {
      if (slot.readers == 0) unlink_lru(slot);
      ++slot.readers;
      ++stats_.hits;
      trace("acquire-hit", item, it->second);
      notify(it->second);
      return Grant{Outcome::kHit, it->second};
    }
    // WRITE in progress: queue behind the writer.
    ROCKET_CHECK(slot.status == Status::kWrite, "acquire: bad slot status");
    ++stats_.write_waits;
    slot.waiters.push_back(std::move(cb));
    trace("acquire-write-wait", item, it->second);
    return Grant{Outcome::kQueued, kInvalidSlot};
  }

  const SlotId slot = allocate_for(item);
  if (slot != kInvalidSlot) {
    trace("acquire-fill", item, slot);
    return Grant{Outcome::kFill, slot};
  }
  ++stats_.alloc_stalls;
  trace("acquire-stall", item, kInvalidSlot);
  pending_.push_back(PendingAlloc{item, std::move(cb), priority});
  return Grant{Outcome::kQueued, kInvalidSlot};
}

std::vector<SlotCache::Grant> SlotCache::acquire_batch(
    const std::vector<ItemId>& items, BatchCallback cb,
    AllocPriority priority) {
  std::vector<Grant> grants;
  grants.reserve(items.size());
  // Shared so only queued entries pay for a callback copy; hits and fills
  // resolve inline and never touch it.
  auto shared_cb =
      cb ? std::make_shared<BatchCallback>(std::move(cb)) : nullptr;
  for (std::size_t k = 0; k < items.size(); ++k) {
    Callback entry_cb;
    if (shared_cb) {
      entry_cb = [shared_cb, k](Grant g) { (*shared_cb)(k, g); };
    }
    grants.push_back(acquire(items[k], std::move(entry_cb), priority));
  }
  return grants;
}

void SlotCache::publish(SlotId id) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(slot.status == Status::kWrite, "publish: slot not in WRITE");
  slot.status = Status::kRead;
  ++resident_;
  // Writer keeps the first pin; every waiter gets one more.
  slot.readers = 1 + static_cast<std::uint32_t>(slot.waiters.size());
  trace("publish", slot.item, id);
  notify(id);
  std::vector<Callback> waiters = std::move(slot.waiters);
  slot.waiters.clear();
  stats_.hits += waiters.size();
  for (auto& cb : waiters) {
    if (cb) cb(Grant{Outcome::kHit, id});
  }
}

void SlotCache::abort(SlotId id) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(slot.status == Status::kWrite, "abort: slot not in WRITE");
  index_.erase(slot.item);
  slot.item = kNoItem;
  slot.status = Status::kEmpty;
  slot.readers = 0;
  notify(id);
  std::vector<Callback> waiters = std::move(slot.waiters);
  slot.waiters.clear();
  stats_.failures += waiters.size() + 1;
  push_lru_front(id);
  for (auto& cb : waiters) {
    if (cb) cb(Grant{Outcome::kFailed, kInvalidSlot});
  }
  drain_pending();
}

void SlotCache::release(SlotId id) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(slot.status == Status::kRead, "release: slot not in READ");
  ROCKET_CHECK(slot.readers > 0, "release: no pins held");
  trace("release", slot.item, id);
  if (--slot.readers == 0) {
    notify(id);
    push_lru_back(id);  // most-recently-used end
    drain_pending();
  } else {
    notify(id);
  }
}

void SlotCache::pin_existing(SlotId id, std::uint32_t n) {
  Slot& slot = slots_[id];
  ROCKET_CHECK(slot.status == Status::kRead && slot.readers > 0,
               "pin_existing: slot not pinned-readable");
  slot.readers += n;
  notify(id);
}

void SlotCache::drain_pending() {
  // One pass over the queue. A request whose item has meanwhile been filled
  // (or is being filled) piggy-backs on that slot — no free slot needed;
  // requests that still need an allocation are served FIFO while evictable
  // slots exist. Callbacks may re-enter acquire() and extend pending_, so
  // we detach the queue first and splice unserved requests back in front.
  std::vector<PendingAlloc> queue = std::move(pending_);
  pending_.clear();
  // Demand allocations outrank prefetch ones (AllocPriority): a look-ahead
  // tile must never absorb the slot a compute tile is stalled on. Stable,
  // so each class stays FIFO — and an all-demand queue (the default) is
  // bit-identical to the historical single-class drain.
  std::stable_partition(queue.begin(), queue.end(), [](const PendingAlloc& p) {
    return p.priority == AllocPriority::kDemand;
  });
  std::vector<PendingAlloc> unserved;
  for (auto& req : queue) {
    const auto it = index_.find(req.item);
    if (it != index_.end()) {
      Slot& slot = slots_[it->second];
      if (slot.status == Status::kRead) {
        if (slot.readers == 0) unlink_lru(slot);
        ++slot.readers;
        ++stats_.hits;
        notify(it->second);
        if (req.cb) req.cb(Grant{Outcome::kHit, it->second});
      } else {
        ++stats_.write_waits;
        slot.waiters.push_back(std::move(req.cb));
      }
      continue;
    }
    if (!lru_.empty()) {
      const SlotId slot = allocate_for(req.item);
      if (req.cb) req.cb(Grant{Outcome::kFill, slot});
    } else {
      unserved.push_back(std::move(req));
    }
  }
  pending_.insert(pending_.begin(), std::make_move_iterator(unserved.begin()),
                  std::make_move_iterator(unserved.end()));
}

std::optional<SlotId> SlotCache::try_pin(ItemId item) {
  const auto it = index_.find(item);
  if (it == index_.end() || slots_[it->second].status != Status::kRead) {
    ++probe_misses_;
    return std::nullopt;
  }
  Slot& slot = slots_[it->second];
  if (slot.readers == 0) unlink_lru(slot);
  ++slot.readers;
  ++probe_hits_;
  notify(it->second);
  return it->second;
}

bool SlotCache::contains(ItemId item) const { return index_.count(item) != 0; }

bool SlotCache::readable(ItemId item) const {
  const auto it = index_.find(item);
  return it != index_.end() && slots_[it->second].status == Status::kRead;
}

void SlotCache::check_invariants() const {
  std::size_t in_lru = 0;
  std::uint32_t resident = 0;
  for (SlotId id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    if (slot.in_lru) ++in_lru;
    switch (slot.status) {
      case Status::kEmpty:
        ROCKET_CHECK(slot.readers == 0 && slot.waiters.empty(),
                     "empty slot with readers/waiters");
        ROCKET_CHECK(slot.in_lru, "empty slot not evictable");
        ROCKET_CHECK(slot.item == kNoItem, "empty slot holds an item");
        break;
      case Status::kWrite:
        ROCKET_CHECK(!slot.in_lru, "writing slot in LRU list");
        ROCKET_CHECK(index_.at(slot.item) == id, "index mismatch (write)");
        break;
      case Status::kRead:
        ++resident;
        ROCKET_CHECK(index_.at(slot.item) == id, "index mismatch (read)");
        ROCKET_CHECK(slot.in_lru == (slot.readers == 0),
                     "LRU membership must equal unpinned");
        ROCKET_CHECK(slot.waiters.empty(), "readable slot has waiters");
        break;
    }
  }
  ROCKET_CHECK(in_lru == lru_.size(), "LRU size mismatch");
  ROCKET_CHECK(resident == resident_, "resident counter mismatch");
  // At quiescence, pending allocations exist only when nothing is
  // evictable, and only for items not already resident (those would have
  // piggy-backed in drain_pending).
  if (!pending_.empty()) {
    ROCKET_CHECK(lru_.empty(), "pending allocations with evictable slots");
    for (const auto& req : pending_) {
      ROCKET_CHECK(index_.count(req.item) == 0,
                   "pending allocation for a resident item");
    }
  }
}

std::string SlotCache::debug_dump() const {
  std::string out;
  char line[160];
  for (SlotId id = 0; id < slots_.size(); ++id) {
    const Slot& slot = slots_[id];
    const char* status = slot.status == Status::kEmpty   ? "EMPTY"
                         : slot.status == Status::kWrite ? "WRITE"
                                                         : "READ";
    std::snprintf(line, sizeof(line),
                  "  slot %u: item=%d status=%s readers=%u waiters=%zu lru=%d\n",
                  id, slot.item == kNoItem ? -1 : static_cast<int>(slot.item),
                  status, slot.readers, slot.waiters.size(),
                  slot.in_lru ? 1 : 0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  pending_allocs=%zu\n", pending_.size());
  out += line;
  return out;
}

std::uint32_t slots_for_capacity(Bytes capacity, Bytes slot_size,
                                 std::uint32_t max_items) {
  if (slot_size == 0) return max_items;
  const auto raw = static_cast<std::uint64_t>(capacity / slot_size);
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(raw, max_items));
}

}  // namespace rocket::cache

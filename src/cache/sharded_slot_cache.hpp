#pragma once

// Sharded, concurrency-first software cache: N independent SlotCache
// shards selected by item hash, each with its own mutex, LRU list and
// stats, plus a lock-free read fast path (see DESIGN.md §10).
//
// The single-threaded SlotCache policy stays the source of truth for
// replacement and write/read synchronisation inside every shard; this
// class owns the locking that the live runtime previously did itself with
// one global `host_mutex` (and one mutex per device cache). Sharding
// turns that single serialization point into per-shard critical sections,
// and the fast path removes the mutex from the hottest operation
// entirely: a read pin on an item that is already READ **and already
// pinned** is granted by one CAS on a per-slot atomic word.
//
// Fast-path protocol (per global slot, one 64-bit word):
//
//   [ item:32 | status:2 | inner:15 | excess:15 ]
//
// `inner` mirrors the shard policy's reader count and is rewritten, under
// the shard mutex, by a SlotCache slot observer after every mutation.
// `excess` counts lock-free pins the policy does not know about yet. A
// fast pin CASes excess+1, but only while `inner >= 1`: a slot the policy
// counts as pinned can never be chosen as an eviction victim, so the CAS
// can never race a concurrent eviction. A fast release CASes excess-1
// while excess >= 1; the final release of a slot therefore always reaches
// the slow path, which first folds any remaining excess pins into the
// policy (pin_existing) and then runs the ordinary release — LRU
// stamping, pending-allocation draining and waiter callbacks are executed
// by exactly the same code as the unsharded cache.
//
// shards = 1 disables the fast path and degenerates to "SlotCache behind
// one mutex", byte-for-byte compatible with the pre-sharding runtime (the
// escape hatch for exact paper replay and the simulator-equivalence
// tests).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/slot_cache.hpp"

namespace rocket::cache {

class ShardedSlotCache {
 public:
  using Grant = SlotCache::Grant;
  using Outcome = SlotCache::Outcome;
  using Callback = SlotCache::Callback;
  using BatchCallback = SlotCache::BatchCallback;
  using AllocPriority = SlotCache::AllocPriority;

  struct Config {
    std::uint32_t num_slots = 0;  // total, distributed over the shards
    Bytes slot_size = 0;
    std::string name = "cache";
    /// Shard count; clamped so every shard owns at least two slots.
    /// 1 = single-lock mode, fast path off (bit-compatible with SlotCache).
    std::uint32_t shards = 1;
    /// Upper bound on ItemId values (items are dense [0, n) everywhere in
    /// Rocket); sizes the lock-free item→slot hint table. 0 disables the
    /// fast path.
    std::uint32_t max_items = 0;
  };

  explicit ShardedSlotCache(Config config);

  ShardedSlotCache(const ShardedSlotCache&) = delete;
  ShardedSlotCache& operator=(const ShardedSlotCache&) = delete;

  /// SlotCache::acquire semantics with global slot ids. Queued grants fire
  /// `cb` from inside a later publish/abort/release **with that shard's
  /// mutex held** — defer before re-entering the cache, exactly as with
  /// the externally-locked SlotCache.
  Grant acquire(ItemId item, Callback cb,
                AllocPriority priority = AllocPriority::kDemand);

  /// Batched acquire of a tile's working set: the lock-free fast path is
  /// tried per item first, then the remaining items are grouped by shard
  /// and each shard is visited once, in ascending shard order, under its
  /// own mutex (one lock acquisition per shard touched, never holding two
  /// shard locks at once — trivially deadlock-free). Grants are
  /// index-aligned with `items`.
  std::vector<Grant> acquire_batch(const std::vector<ItemId>& items,
                                   BatchCallback cb,
                                   AllocPriority priority =
                                       AllocPriority::kDemand);

  void publish(SlotId slot);
  void abort(SlotId slot);

  /// Drop one read pin; one CAS when the slot keeps other lock-free pins,
  /// otherwise the shard-locked policy release.
  void release(SlotId slot);

  /// Batched release of a tile's pins: fast-path drops first, then one
  /// pass per shard (ascending) for the rest.
  void release_batch(const std::vector<SlotId>& slots);

  /// Non-disruptive probe (§4.1.3 semantics), fast path included.
  std::optional<SlotId> try_pin(ItemId item);

  bool contains(ItemId item) const;
  bool readable(ItemId item) const;

  /// Per-shard stats merged into one table; includes fast-path hits.
  CacheStats stats() const;
  CacheStats shard_stats(std::uint32_t shard) const;
  std::uint64_t probe_hits() const;
  std::uint64_t probe_misses() const;
  /// Read pins granted by the lock-free fast path (subset of stats().hits).
  std::uint64_t fast_hits() const;

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t num_slots() const { return num_slots_; }
  Bytes capacity() const {
    return static_cast<Bytes>(num_slots_) * config_.slot_size;
  }
  std::uint32_t resident_items() const;
  const Config& config() const { return config_; }

  /// Shard an item hashes to (stable for the cache's lifetime). Rocket's
  /// ItemIds are dense [0, n), so the identity hash (mod shards) both
  /// spreads consecutive working sets across all shards and keeps the
  /// per-shard item population balanced — an ample cache still loads each
  /// item exactly once, which a scrambling hash cannot guarantee once the
  /// slot count is clamped to n.
  std::uint32_t shard_of(ItemId item) const {
    return item % static_cast<std::uint32_t>(shards_.size());
  }

  /// Smallest shard slot count — the capacity bound concurrent pin demand
  /// must respect for batched pinning to stay deadlock-free (DESIGN.md
  /// §10).
  std::uint32_t min_shard_slots() const { return min_shard_slots_; }

  /// Audit every shard's policy invariants plus the fast-path mirror:
  /// each word matches its slot's (item, status, readers) and carries no
  /// excess pins. Call only at quiescence.
  void check_invariants() const;

 private:
  /// One shard: policy + mutex + fast-path probe counter,
  /// cacheline-separated so shard-local traffic never false-shares.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unique_ptr<SlotCache> cache;
    std::uint32_t base = 0;   // first global slot id of this shard
    std::uint32_t slots = 0;  // slot count of this shard
    std::atomic<std::uint64_t> fast_probe_hits{0};
  };

  Shard& shard_for_item(ItemId item) { return *shards_[shard_of(item)]; }
  std::uint32_t shard_index_of_slot(SlotId slot) const;
  Shard& shard_for_slot(SlotId slot);
  const Shard& shard_for_slot(SlotId slot) const;

  /// Rewrite `slot`'s word from the shard policy's current state,
  /// preserving the excess field (callers hold the shard mutex).
  void sync_word(Shard& shard, SlotId local);

  /// CAS a lock-free pin onto `item`'s hinted slot; nullopt on miss,
  /// contention, or a slot with no policy-visible pin.
  std::optional<SlotId> fast_pin(ItemId item);

  /// CAS one excess pin off `slot`; false if none remain.
  bool fast_release(SlotId slot);

  /// Fold `slot`'s outstanding excess pins into the shard policy (callers
  /// hold the shard mutex).
  void reconcile_excess(Shard& shard, SlotId slot);

  /// Slow-path release under the shard mutex: folds excess pins and, when
  /// dropping the final pin, fences the word (inner = 0, excess asserted
  /// 0) before the policy release so no lock-free pin can land on a slot
  /// that is about to become evictable.
  void locked_release(Shard& shard, SlotId slot);

  Callback wrap_callback(Callback cb, std::uint32_t base);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint32_t num_slots_ = 0;
  std::uint32_t min_shard_slots_ = 0;
  bool fast_path_ = false;
  /// Per-slot fast-path words (layout in the file header).
  std::vector<std::atomic<std::uint64_t>> words_;
  /// Per-slot fast-hit counters: the acquire fast path must not pay a
  /// shard lookup (an integer division) or a shared shard counter; slots
  /// are contiguous per shard, so stats() attributes them by range.
  std::vector<std::atomic<std::uint64_t>> fast_hits_by_slot_;
  /// item → last global slot it was published in (kInvalidSlot when
  /// unknown; stale hints are harmless — the word check rejects them).
  std::vector<std::atomic<SlotId>> hints_;
};

}  // namespace rocket::cache

#pragma once

// Fixed-slot software cache with WRITE/READ slot states (paper §4.1.1–4.1.2
// and Fig 4).
//
// The cache manages a fixed number of fixed-size slots. Each slot is either
// EMPTY, WRITE (one writer is filling it) or READ (n readers active). On a
// miss the least-recently-used unpinned slot is evicted and handed to the
// caller as the *writer*; concurrent requests for the same item queue on the
// WRITE slot and are granted read pins when the writer publishes. This
// synchronisation between jobs is exactly the paper's: "while one job is
// writing item i, other jobs that depend on item i are stalled until the
// slot becomes available."
//
// The class is a *policy* object: single-threaded, no blocking, callbacks
// for deferred grants. The live runtime wraps it in a mutex and the DES
// cluster drives it from coroutines; both backends therefore run identical
// replacement and synchronisation decisions (see DESIGN.md §5.1).

#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"

namespace rocket::cache {

using ItemId = std::uint32_t;
using SlotId = std::uint32_t;

inline constexpr SlotId kInvalidSlot = std::numeric_limits<SlotId>::max();
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// Statistics counters; all monotonically increasing.
struct CacheStats {
  std::uint64_t hits = 0;          // immediate read grants
  std::uint64_t write_waits = 0;   // queued behind an in-progress writer
  std::uint64_t fills = 0;         // caller became the writer (a "load")
  std::uint64_t evictions = 0;     // victim slot held a previous item
  std::uint64_t alloc_stalls = 0;  // no evictable slot; allocation queued
  std::uint64_t failures = 0;      // aborted fills propagated to waiters
};

/// Merge counters — used to aggregate per-shard stats (ShardedSlotCache)
/// and per-node stats (LiveCluster reports) into one table.
inline CacheStats& operator+=(CacheStats& a, const CacheStats& b) {
  a.hits += b.hits;
  a.write_waits += b.write_waits;
  a.fills += b.fills;
  a.evictions += b.evictions;
  a.alloc_stalls += b.alloc_stalls;
  a.failures += b.failures;
  return a;
}

class SlotCache {
 public:
  struct Config {
    std::uint32_t num_slots = 0;
    Bytes slot_size = 0;
    std::string name = "cache";
  };

  enum class Outcome {
    kHit,     // read pin granted; release(slot) when done
    kFill,    // caller is the writer; publish(slot) or abort(slot)
    kQueued,  // callback will fire later with kHit / kFill / kFailed
    kFailed,  // (callback-only) the writer aborted; retry or give up
  };

  struct Grant {
    Outcome outcome;
    SlotId slot = kInvalidSlot;
  };

  enum class Status : std::uint8_t { kEmpty, kWrite, kRead };

  /// Allocation class of an acquire (the look-ahead pipeline's priority
  /// lever). Items a tile is *computing on* are protected by their read
  /// pins — no priority needed there; what prefetch must not do is starve
  /// a compute tile's *allocation* when no slot is evictable. kPrefetch
  /// requests therefore queue behind every kDemand request in the
  /// pending-allocation list; with only kDemand requests (the default)
  /// the policy is byte-for-byte the historical FIFO.
  enum class AllocPriority : std::uint8_t { kDemand, kPrefetch };

  /// Invoked after every mutation of a slot's (item, status, readers)
  /// triple, with the slot that changed, while the mutating call is still
  /// on the stack. ShardedSlotCache uses this to mirror slot state into
  /// its lock-free fast-path words; unset (the default) it costs one
  /// branch per mutation and the policy is byte-for-byte unchanged.
  using SlotObserver = std::function<void(SlotId)>;
  void set_slot_observer(SlotObserver observer) {
    observer_ = std::move(observer);
  }

  /// Invoked exactly once for queued requests, from within the publish /
  /// abort / release call that unblocked them. Never invoked re-entrantly
  /// from acquire().
  using Callback = std::function<void(Grant)>;

  explicit SlotCache(Config config);

  SlotCache(const SlotCache&) = delete;
  SlotCache& operator=(const SlotCache&) = delete;

  /// Request a read pin on `item`. Immediate outcomes are returned (kHit /
  /// kFill); otherwise kQueued is returned and `cb` fires later. `cb` may
  /// be empty only if the caller can prove no queueing can occur.
  Grant acquire(ItemId item, Callback cb,
                AllocPriority priority = AllocPriority::kDemand);

  /// Per-entry callback of a batched acquire: fires once for every entry
  /// whose immediate outcome was kQueued, with that entry's index into the
  /// batch and the final grant (kHit / kFill / kFailed).
  using BatchCallback = std::function<void(std::size_t index, Grant)>;

  /// Request read pins on every item of `items` in one call — a tile job
  /// pins its whole working set with a single pass through the policy (the
  /// live runtime wraps the call in one mutex acquisition instead of one
  /// per item). Returns one Grant per item, index-aligned with `items`:
  /// kHit entries are pinned now, kFill entries made the caller the writer
  /// (drive the load pipeline, then publish/abort), kQueued entries resolve
  /// later through `cb`. Items already pinned earlier in the same batch are
  /// handled like any concurrent acquire (an extra pin, or a wait on the
  /// batch's own write slot), but callers normally pass distinct items.
  std::vector<Grant> acquire_batch(const std::vector<ItemId>& items,
                                   BatchCallback cb,
                                   AllocPriority priority =
                                       AllocPriority::kDemand);

  /// Writer completed filling `slot`: transition WRITE→READ. The writer is
  /// granted the first read pin (do not call acquire again). All queued
  /// waiters receive read pins via their callbacks.
  void publish(SlotId slot);

  /// Writer failed: waiters receive kFailed, the slot returns to EMPTY.
  void abort(SlotId slot);

  /// Drop one read pin. When the last pin drops the slot becomes evictable
  /// and is stamped most-recently-used.
  void release(SlotId slot);

  /// Pin `item` only if it is present and readable right now; never
  /// allocates, queues or touches LRU order beyond the pin itself. Used by
  /// the distributed-cache probe path: a remote peer asking "do you have
  /// item i?" must not disturb the local cache on a miss. Probes are
  /// counted separately from regular hits/misses.
  std::optional<SlotId> try_pin(ItemId item);

  /// Add `n` read pins to a slot that already holds at least one. Used by
  /// ShardedSlotCache to fold lock-free fast-path pins back into the
  /// policy's reader count before a slow-path release; not a cache access,
  /// so it touches no stats and no LRU state.
  void pin_existing(SlotId slot, std::uint32_t n);

  std::uint64_t probe_hits() const { return probe_hits_; }
  std::uint64_t probe_misses() const { return probe_misses_; }

  /// Item lookup without side effects (no pin, no LRU touch).
  bool contains(ItemId item) const;

  /// Whether `item` is present and readable right now.
  bool readable(ItemId item) const;

  const CacheStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  std::uint32_t num_slots() const { return static_cast<std::uint32_t>(slots_.size()); }
  Bytes capacity() const { return static_cast<Bytes>(slots_.size()) * config_.slot_size; }

  /// Item currently held by `slot` (kNoItem if empty).
  ItemId item_of(SlotId slot) const { return slots_[slot].item; }
  std::uint32_t readers_of(SlotId slot) const { return slots_[slot].readers; }
  Status status_of(SlotId slot) const { return slots_[slot].status; }

  /// Number of slots currently holding readable items.
  std::uint32_t resident_items() const { return resident_; }

  /// Invariant audit for tests: verifies slot/map/LRU consistency.
  void check_invariants() const;

  /// One-line-per-slot debug description (diagnostics only).
  std::string debug_dump() const;

  /// Trace every operation touching `item` into an internal log
  /// (diagnostics only; kNoItem disables).
  void set_trace_item(ItemId item) { trace_item_ = item; }
  const std::vector<std::string>& trace_log() const { return trace_log_; }

 private:
  struct Slot {
    ItemId item = kNoItem;
    Status status = Status::kEmpty;
    std::uint32_t readers = 0;
    std::vector<Callback> waiters;      // queued behind WRITE
    std::list<SlotId>::iterator lru_it; // valid iff in_lru
    bool in_lru = false;
  };

  struct PendingAlloc {
    ItemId item;
    Callback cb;
    AllocPriority priority = AllocPriority::kDemand;
  };

  void unlink_lru(Slot& slot);
  void push_lru_back(SlotId id);
  void push_lru_front(SlotId id);

  /// Assign an evictable slot to `item` as a writer. Returns kInvalidSlot
  /// if nothing is evictable.
  SlotId allocate_for(ItemId item);

  /// A slot became evictable or empty: serve queued allocations.
  void drain_pending();

  Config config_;
  std::vector<Slot> slots_;
  std::unordered_map<ItemId, SlotId> index_;
  std::list<SlotId> lru_;  // front = coldest; contains exactly the evictable slots
  std::vector<PendingAlloc> pending_;
  CacheStats stats_;
  std::uint32_t resident_ = 0;
  std::uint64_t probe_hits_ = 0;
  std::uint64_t probe_misses_ = 0;
  ItemId trace_item_ = kNoItem;
  std::vector<std::string> trace_log_;
  void trace(const char* op, ItemId item, SlotId slot);
  SlotObserver observer_;
  void notify(SlotId slot) {
    if (observer_) observer_(slot);
  }
};

/// Helper: number of slots that fit in `capacity`, clamped to [0, max_items]
/// (more slots than items is pure waste; the paper's Fig 9 x-axis counts
/// slots the same way).
std::uint32_t slots_for_capacity(Bytes capacity, Bytes slot_size,
                                 std::uint32_t max_items);

}  // namespace rocket::cache

#pragma once

// Third-level (cluster) cache directory — the mediator protocol of §4.1.3.
//
// Item `i` is mediated by node `i mod p`. The mediator keeps, per item, the
// list of the `h` nodes that most recently *requested* the item — the
// "candidates" most likely to hold it now. A request from node A is
// answered with the current candidate chain C1..Ch, after which A is
// prepended (A is about to obtain the item one way or another, so it is
// the best future candidate). The requester then probes the chain hop by
// hop; each miss forwards to the next candidate; an exhausted chain is a
// distributed-cache miss and A falls back to executing the load locally.
//
// The directory itself is pure bookkeeping (this class); the message flow
// (h + 2 messages per request) lives in the cluster layer.

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/slot_cache.hpp"

namespace rocket::cache {

using NodeId = std::uint32_t;

struct DirectoryStats {
  std::uint64_t requests = 0;         // mediator lookups served
  std::uint64_t empty_responses = 0;  // no candidates were known
  std::uint64_t chain_hits = 0;       // chain walks that found the item on a peer
  std::uint64_t chain_misses = 0;     // exhausted chains (fell back to a load)
  std::uint64_t hops = 0;             // candidate hops walked across all chains
  std::uint64_t chain_aborts = 0;     // chains truncated at the walk cap
};

/// Aggregate per-node directory stats into cluster totals.
inline DirectoryStats& operator+=(DirectoryStats& a, const DirectoryStats& b) {
  a.requests += b.requests;
  a.empty_responses += b.empty_responses;
  a.chain_hits += b.chain_hits;
  a.chain_misses += b.chain_misses;
  a.hops += b.hops;
  a.chain_aborts += b.chain_aborts;
  return a;
}

class DistributedDirectory {
 public:
  /// `max_candidates` is the paper's h: the chain length handed out and the
  /// retention bound of the per-item list. `max_chain_hops` additionally
  /// caps the chain actually *handed out* (0 = no extra cap): under node
  /// churn the retained list can be stale, and every stale hop is a wasted
  /// round trip before the requester falls back to storage — a truncated
  /// hand-out is counted in `chain_aborts`.
  explicit DistributedDirectory(std::uint32_t max_candidates,
                                std::uint32_t max_chain_hops = 0)
      : max_candidates_(max_candidates), max_chain_hops_(max_chain_hops) {}

  /// Mediator-side handling of a request for `item` from `requester`:
  /// returns the candidate chain (possibly empty) and records the requester
  /// as the most recent candidate. The requester itself is excluded from
  /// the returned chain (querying yourself is useless), mirroring the
  /// paper's note that B or Cx may equal A without harming correctness.
  std::vector<NodeId> on_request(ItemId item, NodeId requester);

  /// Requester-side outcome of a chain walk: `hops_walked` candidates were
  /// probed and the item was (or was not) found. Mediator lookups and chain
  /// outcomes happen on different nodes; each side records into its *own*
  /// node's directory so per-node stats aggregate to cluster totals without
  /// extra protocol messages.
  void record_chain_outcome(bool hit, std::uint32_t hops_walked) {
    if (hit) {
      ++stats_.chain_hits;
    } else {
      ++stats_.chain_misses;
    }
    stats_.hops += hops_walked;
  }

  /// Which node mediates `item` in a p-node cluster.
  static NodeId mediator_of(ItemId item, std::uint32_t num_nodes) {
    return static_cast<NodeId>(item % num_nodes);
  }

  std::uint32_t max_candidates() const { return max_candidates_; }
  std::uint32_t max_chain_hops() const { return max_chain_hops_; }
  const DirectoryStats& stats() const { return stats_; }

  /// Forget `node` everywhere: a dead node must never be handed out as a
  /// candidate again (the failure detector's directory prune).
  void remove_node(NodeId node);

  /// Candidate list snapshot (testing).
  std::vector<NodeId> candidates(ItemId item) const;

 private:
  std::uint32_t max_candidates_;
  std::uint32_t max_chain_hops_;
  std::unordered_map<ItemId, std::deque<NodeId>> candidates_;
  DirectoryStats stats_;
};

}  // namespace rocket::cache

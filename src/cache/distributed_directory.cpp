#include "cache/distributed_directory.hpp"

#include <algorithm>

namespace rocket::cache {

std::vector<NodeId> DistributedDirectory::on_request(ItemId item,
                                                     NodeId requester) {
  ++stats_.requests;
  auto& list = candidates_[item];

  std::vector<NodeId> chain;
  chain.reserve(list.size());
  for (const NodeId node : list) {
    if (node != requester) chain.push_back(node);
  }
  if (chain.empty()) ++stats_.empty_responses;
  if (max_chain_hops_ > 0 && chain.size() > max_chain_hops_) {
    chain.resize(max_chain_hops_);
    ++stats_.chain_aborts;
  }

  // Record the requester as the freshest candidate: it is about to obtain
  // the item (from a peer or by loading) and will hold it for a while.
  // De-duplicate so repeat requesters don't flush other candidates out.
  const auto it = std::find(list.begin(), list.end(), requester);
  if (it != list.end()) list.erase(it);
  list.push_front(requester);
  while (list.size() > max_candidates_) list.pop_back();

  return chain;
}

void DistributedDirectory::remove_node(NodeId node) {
  for (auto& [item, list] : candidates_) {
    const auto it = std::find(list.begin(), list.end(), node);
    if (it != list.end()) list.erase(it);
  }
}

std::vector<NodeId> DistributedDirectory::candidates(ItemId item) const {
  const auto it = candidates_.find(item);
  if (it == candidates_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

}  // namespace rocket::cache

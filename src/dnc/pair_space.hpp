#pragma once

// Divide-and-conquer decomposition of the all-pairs workload (paper §4.2).
//
// The workload {(i, j) : 0 <= i < j < n} is the strict upper triangle of an
// n×n matrix. A `Region` is an axis-aligned rectangle intersected with that
// triangle; the root region is the whole triangle and `split()` produces
// the four quadrant sub-regions (empty quadrants are dropped, as in the
// paper's Fig 5). Leaves are regions at or below a configurable pair
// budget; the scheduler turns leaves into comparison jobs.
//
// All functions here are pure and O(1) (except enumeration), which is what
// makes the decomposition cheap enough to re-derive during work-stealing
// instead of materialising a task tree up front.

#include <array>
#include <cstdint>
#include <vector>

namespace rocket::dnc {

using ItemIndex = std::uint32_t;
using PairCount = std::uint64_t;

/// One ordered pair of items to compare.
struct Pair {
  ItemIndex left;   // smaller index
  ItemIndex right;  // larger index
  friend bool operator==(const Pair&, const Pair&) = default;
};

/// Rectangle [row_begin,row_end) × [col_begin,col_end) intersected with the
/// strict upper triangle (row < col).
struct Region {
  ItemIndex row_begin = 0;
  ItemIndex row_end = 0;
  ItemIndex col_begin = 0;
  ItemIndex col_end = 0;
  std::uint32_t depth = 0;  // splits applied from the root

  friend bool operator==(const Region&, const Region&) = default;
};

/// The root region for an n-item problem: all pairs 0 <= i < j < n.
Region root_region(ItemIndex n);

/// Number of (i, j) pairs with i < j inside the region. Closed form, O(1).
PairCount count_pairs(const Region& region);

bool is_empty(const Region& region);

/// Quadrant split. Returns the non-empty quadrants (up to 4), each with
/// depth = region.depth + 1. Splitting a region with <= 1 pair returns it
/// unchanged as its only element.
std::vector<Region> split(const Region& region);

/// Enumerate every pair in the region in row-major order.
template <typename Fn>
void for_each_pair(const Region& region, Fn&& fn) {
  for (ItemIndex i = region.row_begin; i < region.row_end; ++i) {
    const ItemIndex j_start = (i + 1 > region.col_begin) ? i + 1 : region.col_begin;
    for (ItemIndex j = j_start; j < region.col_end; ++j) {
      fn(Pair{i, j});
    }
  }
}

/// Collect the region's pairs into a vector (testing / small leaves).
std::vector<Pair> pairs_of(const Region& region);

/// Distinct items referenced by the region (its working set); this is what
/// bounds the cache footprint of a sub-tree and why divide-and-conquer
/// yields locality: deep regions touch few items.
std::uint64_t working_set_size(const Region& region);

/// Half-open range of item indices; `begin == end` means empty.
struct ItemRange {
  ItemIndex begin = 0;
  ItemIndex end = 0;

  bool empty() const { return begin >= end; }
  std::uint32_t size() const { return empty() ? 0 : end - begin; }
  friend bool operator==(const ItemRange&, const ItemRange&) = default;
};

/// Items that appear on the row (left) side of at least one pair in the
/// region: [row_begin, min(row_end, col_end - 1)).
ItemRange row_items(const Region& region);

/// Items that appear on the column (right) side of at least one pair in the
/// region: [max(col_begin, row_begin + 1), col_end).
ItemRange col_items(const Region& region);

/// Sorted distinct items of the region — the union of row_items and
/// col_items. This is the set a tile-batched job pins before running its
/// compares; its size always equals working_set_size(region).
std::vector<ItemIndex> working_set_items(const Region& region);

/// Order in which a region's leaves are enumerated / executed. The order
/// decides how many *cold* items consecutive tiles introduce, which is what
/// the slot caches pay for (the scheduling-order lever of Schoeneman &
/// Zola's Spark all-pairs work, applied to our software caches):
///   * kDepthFirst — the quadtree split order (Z/Morton nesting). This is
///     the work-stealing executor's native descent order and the
///     historical schedule; reuse distance is bounded by quadrant size.
///   * kMorton    — leaves sorted by the Morton (bit-interleave) code of
///     their origin; the flattened form of kDepthFirst.
///   * kHilbert   — leaves sorted by Hilbert-curve index; consecutive
///     tiles always share a side (rows or columns), which minimises the
///     adjacent-transition cost among these orders.
///   * kRowMajor  — leaves sorted by (row_begin, col_begin); the locality
///     baseline: every row of tiles re-walks the full column span.
enum class Traversal : std::uint8_t {
  kDepthFirst,
  kMorton,
  kHilbert,
  kRowMajor,
};

/// Decompose `root` into leaves of at most `max_leaf_pairs` pairs (the
/// exact leaf set the executor's depth-first descent produces) and return
/// them in the given traversal order. The leaf *set* is order-invariant;
/// only the sequence changes.
std::vector<Region> leaves(const Region& root, PairCount max_leaf_pairs,
                           Traversal order = Traversal::kDepthFirst);

/// Cold-item cost of executing `leaves` in sequence with a cache that
/// holds exactly the previous leaf's working set: sum over leaves of the
/// distinct items not referenced by the predecessor (the first leaf is
/// all cold). The locality figure of merit for comparing traversal
/// orders.
std::uint64_t cold_transition_items(const std::vector<Region>& leaves);

/// Static node-level partition of the n-item pair space (the live mesh's
/// initial work distribution; imbalances are corrected at runtime by
/// cross-node stealing). Regions are split largest-first until at least
/// parts × granularity exist (or nothing splits further), then assigned
/// largest-first to the currently lightest part. Deterministic, and the
/// lists' union is exactly the root pair set; parts may be empty when the
/// problem is smaller than the cluster.
std::vector<std::vector<Region>> partition_root(ItemIndex n,
                                                std::uint32_t parts,
                                                std::uint32_t granularity = 4);

}  // namespace rocket::dnc

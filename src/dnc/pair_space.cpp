#include "dnc/pair_space.hpp"

#include <algorithm>
#include <tuple>

namespace rocket::dnc {

Region root_region(ItemIndex n) { return Region{0, n, 0, n, 0}; }

PairCount count_pairs(const Region& r) {
  if (r.row_begin >= r.row_end || r.col_begin >= r.col_end) return 0;
  // Rows fully inside the rectangle's column span: i + 1 <= col_begin.
  const std::uint64_t cols = r.col_end - r.col_begin;
  const std::uint64_t full_rows_end = std::min<std::uint64_t>(r.row_end, r.col_begin);
  std::uint64_t total = 0;
  if (full_rows_end > r.row_begin) {
    total += (full_rows_end - r.row_begin) * cols;
  }
  // Partial rows: i >= col_begin contribute (col_end - 1 - i) pairs while
  // positive, i.e. for i in [lo, hi) with hi = min(row_end, col_end - 1).
  const std::uint64_t lo = std::max<std::uint64_t>(r.row_begin, r.col_begin);
  const std::uint64_t hi =
      std::min<std::uint64_t>(r.row_end, r.col_end > 0 ? r.col_end - 1 : 0);
  if (hi > lo) {
    const std::uint64_t count = hi - lo;
    const std::uint64_t first = r.col_end - 1 - lo;   // largest term
    const std::uint64_t last = r.col_end - hi;        // smallest term
    total += count * (first + last) / 2;
  }
  return total;
}

bool is_empty(const Region& region) { return count_pairs(region) == 0; }

std::vector<Region> split(const Region& r) {
  std::vector<Region> out;
  if (count_pairs(r) <= 1) {
    out.push_back(r);
    return out;
  }
  const ItemIndex row_mid = r.row_begin + (r.row_end - r.row_begin) / 2;
  const ItemIndex col_mid = r.col_begin + (r.col_end - r.col_begin) / 2;
  const std::array<Region, 4> quadrants{{
      {r.row_begin, row_mid, r.col_begin, col_mid, r.depth + 1},
      {r.row_begin, row_mid, col_mid, r.col_end, r.depth + 1},
      {row_mid, r.row_end, r.col_begin, col_mid, r.depth + 1},
      {row_mid, r.row_end, col_mid, r.col_end, r.depth + 1},
  }};
  for (const auto& q : quadrants) {
    if (!is_empty(q)) out.push_back(q);
  }
  return out;
}

std::vector<Pair> pairs_of(const Region& region) {
  std::vector<Pair> out;
  out.reserve(static_cast<std::size_t>(count_pairs(region)));
  for_each_pair(region, [&](Pair p) { out.push_back(p); });
  return out;
}

ItemRange row_items(const Region& r) {
  if (is_empty(r)) return ItemRange{};
  const ItemIndex hi = std::min<ItemIndex>(
      r.row_end, r.col_end > 0 ? r.col_end - 1 : 0);
  if (hi <= r.row_begin) return ItemRange{};
  return ItemRange{r.row_begin, hi};
}

ItemRange col_items(const Region& r) {
  if (is_empty(r)) return ItemRange{};
  const ItemIndex lo = std::max<ItemIndex>(r.col_begin, r.row_begin + 1);
  if (r.col_end <= lo) return ItemRange{};
  return ItemRange{lo, r.col_end};
}

std::vector<ItemIndex> working_set_items(const Region& r) {
  std::vector<ItemIndex> out;
  const ItemRange rows = row_items(r);
  const ItemRange cols = col_items(r);
  out.reserve(rows.size() + cols.size());
  for (ItemIndex i = rows.begin; i < rows.end; ++i) out.push_back(i);
  // rows.begin < cols.begin always (cols start past row_begin), so the
  // union stays sorted by skipping the overlapping prefix of cols.
  const ItemIndex col_start =
      rows.empty() ? cols.begin : std::max(cols.begin, rows.end);
  for (ItemIndex j = col_start; j < cols.end; ++j) out.push_back(j);
  return out;
}

namespace {

/// Mirror of StealExecutor::descend: split while over budget, children in
/// split() order — the historical schedule, and the Z/Morton nesting.
void collect_leaves(const Region& region, PairCount max_leaf_pairs,
                    std::vector<Region>& out) {
  if (count_pairs(region) == 0) return;
  if (count_pairs(region) <= max_leaf_pairs) {
    out.push_back(region);
    return;
  }
  for (const Region& child : split(region)) {
    collect_leaves(child, max_leaf_pairs, out);
  }
}

std::uint32_t bits_for(ItemIndex extent) {
  std::uint32_t bits = 1;
  while ((1u << bits) < extent && bits < 31) ++bits;
  return bits;
}

std::uint64_t morton_code(std::uint32_t row, std::uint32_t col) {
  std::uint64_t code = 0;
  for (std::uint32_t b = 0; b < 32; ++b) {
    code |= (static_cast<std::uint64_t>((row >> b) & 1u) << (2 * b + 1)) |
            (static_cast<std::uint64_t>((col >> b) & 1u) << (2 * b));
  }
  return code;
}

/// Hilbert d-index of (x, y) on a 2^bits × 2^bits grid (the classic
/// rotate-and-flip accumulation).
std::uint64_t hilbert_index(std::uint32_t bits, std::uint32_t x,
                            std::uint32_t y) {
  std::uint64_t d = 0;
  for (std::uint32_t s = 1u << (bits - 1); s > 0; s >>= 1) {
    const std::uint32_t rx = (x & s) ? 1 : 0;
    const std::uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<std::uint64_t>(s) * s * ((3 * rx) ^ ry);
    if (ry == 0) {  // rotate the quadrant so the curve stays continuous
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

}  // namespace

std::vector<Region> leaves(const Region& root, PairCount max_leaf_pairs,
                           Traversal order) {
  std::vector<Region> out;
  collect_leaves(root, std::max<PairCount>(1, max_leaf_pairs), out);
  switch (order) {
    case Traversal::kDepthFirst:
      break;
    case Traversal::kRowMajor:
      std::sort(out.begin(), out.end(), [](const Region& a, const Region& b) {
        return std::tie(a.row_begin, a.col_begin) <
               std::tie(b.row_begin, b.col_begin);
      });
      break;
    case Traversal::kMorton:
    case Traversal::kHilbert: {
      const std::uint32_t bits =
          bits_for(std::max(root.row_end, root.col_end));
      // Decorated sort: one curve-key computation per leaf, not per
      // comparison (the key loops over coordinate bits).
      std::vector<std::pair<std::uint64_t, Region>> keyed;
      keyed.reserve(out.size());
      for (const Region& r : out) {
        keyed.emplace_back(order == Traversal::kMorton
                               ? morton_code(r.row_begin, r.col_begin)
                               : hilbert_index(bits, r.col_begin,
                                               r.row_begin),
                           r);
      }
      std::sort(keyed.begin(), keyed.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  // Leaves have distinct origins; the tie-break only makes
                  // the order total for degenerate inputs.
                  return std::tie(a.second.row_begin, a.second.col_begin) <
                         std::tie(b.second.row_begin, b.second.col_begin);
                });
      for (std::size_t i = 0; i < keyed.size(); ++i) out[i] = keyed[i].second;
      break;
    }
  }
  return out;
}

std::uint64_t cold_transition_items(const std::vector<Region>& leaves) {
  std::uint64_t total = 0;
  std::vector<ItemIndex> prev;
  for (const Region& leaf : leaves) {
    std::vector<ItemIndex> ws = working_set_items(leaf);
    for (const ItemIndex item : ws) {
      if (!std::binary_search(prev.begin(), prev.end(), item)) ++total;
    }
    prev = std::move(ws);
  }
  return total;
}

std::vector<std::vector<Region>> partition_root(ItemIndex n,
                                                std::uint32_t parts,
                                                std::uint32_t granularity) {
  std::vector<std::vector<Region>> out(parts);
  if (parts == 0) return out;
  std::vector<Region> regions;
  const Region root = root_region(n);
  if (count_pairs(root) > 0) regions.push_back(root);

  const auto target = static_cast<std::uint64_t>(parts) *
                      std::max<std::uint32_t>(1, granularity);
  while (regions.size() < target) {
    const auto it = std::max_element(
        regions.begin(), regions.end(), [](const Region& a, const Region& b) {
          return count_pairs(a) < count_pairs(b);
        });
    if (it == regions.end() || count_pairs(*it) <= 1) break;
    const Region victim = *it;
    regions.erase(it);
    for (const auto& child : split(victim)) regions.push_back(child);
  }

  // Largest-first into the lightest part (greedy makespan heuristic); ties
  // broken by region coordinates so the assignment is deterministic.
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) {
              const auto pa = count_pairs(a), pb = count_pairs(b);
              if (pa != pb) return pa > pb;
              return std::tie(a.row_begin, a.col_begin) <
                     std::tie(b.row_begin, b.col_begin);
            });
  std::vector<PairCount> load(parts, 0);
  for (const auto& region : regions) {
    const auto lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    out[lightest].push_back(region);
    load[lightest] += count_pairs(region);
  }
  return out;
}

std::uint64_t working_set_size(const Region& r) {
  if (is_empty(r)) return 0;
  // Rows that contribute at least one pair: [row_begin, min(row_end, col_end-1)).
  const std::uint64_t row_lo = r.row_begin;
  const std::uint64_t row_hi =
      std::min<std::uint64_t>(r.row_end, r.col_end > 0 ? r.col_end - 1 : 0);
  // Columns that contribute: [max(col_begin, row_begin+1), col_end).
  const std::uint64_t col_lo = std::max<std::uint64_t>(r.col_begin, row_lo + 1);
  const std::uint64_t col_hi = r.col_end;
  const std::uint64_t rows = row_hi > row_lo ? row_hi - row_lo : 0;
  const std::uint64_t cols = col_hi > col_lo ? col_hi - col_lo : 0;
  // Overlap between the row range and column range counts once.
  const std::uint64_t overlap_lo = std::max(row_lo, col_lo);
  const std::uint64_t overlap_hi = std::min(row_hi, col_hi);
  const std::uint64_t overlap = overlap_hi > overlap_lo ? overlap_hi - overlap_lo : 0;
  return rows + cols - overlap;
}

}  // namespace rocket::dnc

#include "cluster/sim_cluster.hpp"

#include <algorithm>
#include <coroutine>

#include "cache/distributed_directory.hpp"
#include "cache/slot_cache.hpp"
#include "common/log.hpp"
#include "dnc/pair_space.hpp"
#include "sim/primitives.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace rocket::cluster {

std::vector<NodeConfig> homogeneous_nodes(std::uint32_t p,
                                          const gpu::DeviceSpec& gpu,
                                          std::uint32_t gpus_per_node,
                                          Bytes host_cache) {
  std::vector<NodeConfig> nodes(p);
  for (auto& node : nodes) {
    node.gpus.assign(gpus_per_node, gpu);
    node.host_cache_capacity = host_cache;
  }
  return nodes;
}

namespace {

/// Fabric message body — the cluster models protocol *costs* through
/// control_cost/transfer_cost; no payload is delivered.
struct NoBody {};

/// One-shot future bridging SlotCache's callback API into a coroutine.
///
/// IMPORTANT: the co_await operand must be `cell.wait()`, never the cell
/// itself. Compilers may materialise the awaited object into the coroutine
/// frame by copy (observed with GCC 12); the cache's callback captures the
/// *original* cell's address, so awaiting a copy would lose the wake-up.
/// The Waiter below is identity-free (it holds a pointer), making any such
/// copy harmless.
struct GrantCell {
  explicit GrantCell(sim::Simulation& s) : sim(&s) {}
  GrantCell(const GrantCell&) = delete;
  GrantCell& operator=(const GrantCell&) = delete;
  sim::Simulation* sim;
  std::optional<cache::SlotCache::Grant> value;
  std::coroutine_handle<> waiter;

  cache::SlotCache::Callback callback() {
    return [this](cache::SlotCache::Grant grant) {
      value = grant;
      if (waiter) {
        sim->schedule(0, waiter);
        waiter = nullptr;
      }
    };
  }

  struct Waiter {
    GrantCell* cell;
    bool await_ready() const noexcept { return cell->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) { cell->waiter = h; }
    cache::SlotCache::Grant await_resume() {
      ROCKET_CHECK(cell->value.has_value(), "GrantCell resumed without a grant");
      return *cell->value;
    }
  };
  Waiter wait() { return Waiter{this}; }
};

}  // namespace

struct SimCluster::Impl {
  struct Device {
    gpu::DeviceSpec spec;
    std::uint32_t node = 0;
    std::uint32_t ordinal = 0;
    steal::WorkerId worker_id = 0;
    std::unique_ptr<cache::SlotCache> cache;
    std::unique_ptr<sim::Resource> kernel;
    std::unique_ptr<sim::SharedBandwidth> h2d;
    std::unique_ptr<sim::SharedBandwidth> d2h;
    double busy_preprocess = 0.0;
    double busy_comparison = 0.0;
    std::uint64_t pairs = 0;
    std::vector<double> completions;
  };

  struct Node {
    std::uint32_t id = 0;
    std::unique_ptr<cache::SlotCache> host_cache;  // null if disabled
    std::unique_ptr<sim::Resource> cpu;
    std::unique_ptr<cache::DistributedDirectory> directory;
    std::vector<std::unique_ptr<Device>> devices;
  };

  ClusterConfig cfg;
  WorkloadConfig wl;
  std::uint32_t n = 0;
  std::uint64_t total_pairs = 0;

  sim::Simulation sim;
  std::unique_ptr<net::Fabric<NoBody>> fabric;
  std::unique_ptr<storage::SimulatedStore> store;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<Device*> workers;  // indexed by worker_id
  std::unique_ptr<steal::RegionScheduler> scheduler;
  std::vector<std::unique_ptr<sim::Resource>> job_limits;  // per worker
  std::unique_ptr<sim::Event> all_done;

  std::uint64_t pairs_done = 0;
  std::uint64_t total_loads = 0;
  double makespan = 0.0;
  DistCacheMetrics dc;

  Impl(ClusterConfig config, WorkloadConfig workload)
      : cfg(std::move(config)), wl(std::move(workload)) {
    n = wl.n != 0 ? wl.n : wl.app.default_n;
    total_pairs = model::pair_count(n);
    if (cfg.event_limit != 0) sim.set_event_limit(cfg.event_limit);

    ROCKET_CHECK(!cfg.nodes.empty(), "cluster needs at least one node");
    fabric = std::make_unique<net::Fabric<NoBody>>(
        sim, static_cast<std::uint32_t>(cfg.nodes.size()), cfg.fabric);
    store = std::make_unique<storage::SimulatedStore>(sim, cfg.storage);
    all_done = std::make_unique<sim::Event>(sim);
    dc.hits_at_hop.assign(cfg.hop_limit, 0);

    std::vector<std::uint32_t> workers_per_node;
    for (std::uint32_t node_id = 0; node_id < cfg.nodes.size(); ++node_id) {
      const NodeConfig& nc = cfg.nodes[node_id];
      ROCKET_CHECK(!nc.gpus.empty(), "node without GPUs");
      auto node = std::make_unique<Node>();
      node->id = node_id;
      node->cpu = std::make_unique<sim::Resource>(sim, nc.cpu_threads);
      node->directory =
          std::make_unique<cache::DistributedDirectory>(cfg.hop_limit);
      if (cfg.host_cache_enabled) {
        const auto slots = cache::slots_for_capacity(
            nc.host_cache_capacity, wl.app.slot_size, n);
        if (slots > 0) {
          node->host_cache = std::make_unique<cache::SlotCache>(
              cache::SlotCache::Config{slots, wl.app.slot_size, "host"});
        }
      }
      for (std::uint32_t g = 0; g < nc.gpus.size(); ++g) {
        auto device = std::make_unique<Device>();
        device->spec = nc.gpus[g];
        device->node = node_id;
        device->ordinal = g;
        const Bytes capacity = cfg.device_cache_capacity_override
                                   ? std::min(*cfg.device_cache_capacity_override,
                                              device->spec.cache_capacity())
                                   : device->spec.cache_capacity();
        const auto slots =
            std::max(2u, cache::slots_for_capacity(capacity, wl.app.slot_size, n));
        device->cache = std::make_unique<cache::SlotCache>(
            cache::SlotCache::Config{slots, wl.app.slot_size, "device"});
        device->kernel = std::make_unique<sim::Resource>(sim, 1);
        device->h2d = std::make_unique<sim::SharedBandwidth>(
            sim, device->spec.pcie_bandwidth);
        device->d2h = std::make_unique<sim::SharedBandwidth>(
            sim, device->spec.pcie_bandwidth);
        node->devices.push_back(std::move(device));
      }
      workers_per_node.push_back(static_cast<std::uint32_t>(nc.gpus.size()));
      nodes.push_back(std::move(node));
    }

    steal::RegionScheduler::Config sched_cfg;
    sched_cfg.workers_per_node = workers_per_node;
    sched_cfg.max_leaf_pairs = cfg.max_leaf_pairs;
    sched_cfg.seed = cfg.seed;
    sched_cfg.steal_smallest = cfg.steal_smallest;
    sched_cfg.flat_victim_selection = cfg.flat_victim_selection;
    scheduler = std::make_unique<steal::RegionScheduler>(sched_cfg);

    steal::WorkerId worker_id = 0;
    for (auto& node : nodes) {
      for (auto& device : node->devices) {
        device->worker_id = worker_id++;
        workers.push_back(device.get());
        // Two pins per job: keep 2·limit ≤ device slots to guarantee
        // progress under allocation pressure.
        const auto max_jobs =
            std::max<std::uint32_t>(1, device->cache->num_slots() / 2);
        job_limits.push_back(std::make_unique<sim::Resource>(
            sim, std::min(cfg.job_limit_per_worker, max_jobs)));
      }
    }
  }

  // ---- pipelines -------------------------------------------------------

  /// Load pipeline §3: remote I/O → CPU parse → H2D → GPU pre-process.
  /// Leaves the pre-processed item in the (already WRITE-locked) device
  /// slot; the caller publishes.
  sim::Process load_into_device(Device& dev, std::uint32_t item) {
    Node& node = *nodes[dev.node];
    ++total_loads;
    co_await store->read(wl.app.file_size_of(item, cfg.seed));
    co_await node.cpu->acquire();
    co_await sim::delay(wl.app.parse_seconds(item, cfg.seed));
    node.cpu->release();
    co_await dev.h2d->transfer(wl.app.slot_size);
    if (wl.app.has_preprocess()) {
      co_await dev.kernel->acquire();
      const double t =
          dev.spec.scale_kernel_time(wl.app.preprocess_seconds(item, cfg.seed));
      co_await sim::delay(t);
      dev.kernel->release();
      dev.busy_preprocess += t;
    }
  }

  /// Third-level cache lookup (§4.1.3): ask the mediator, walk the
  /// candidate chain, ship the data from the first peer that has it.
  sim::Process remote_fetch(Node& requester, std::uint32_t item, bool* ok) {
    *ok = false;
    ++dc.requests;
    const auto p = static_cast<std::uint32_t>(nodes.size());
    const auto mediator = cache::DistributedDirectory::mediator_of(item, p);
    co_await fabric->control_cost(requester.id, mediator,
                                  net::Tag::kCacheRequest);
    const auto chain =
        nodes[mediator]->directory->on_request(item, requester.id);
    std::uint32_t hop = 0;
    std::uint32_t prev = mediator;
    for (const auto candidate : chain) {
      if (hop >= cfg.hop_limit) break;
      ++hop;
      co_await fabric->control_cost(prev, candidate, net::Tag::kCacheForward);
      prev = candidate;
      Node& peer = *nodes[candidate];
      if (!peer.host_cache) continue;
      if (auto pin = peer.host_cache->try_pin(item)) {
        co_await fabric->transfer_cost(candidate, requester.id,
                                       net::Tag::kCacheData, wl.app.slot_size);
        peer.host_cache->release(*pin);
        ++dc.hits_at_hop[hop - 1];
        requester.directory->record_chain_outcome(true, hop);
        *ok = true;
        co_return;
      }
    }
    co_await fabric->control_cost(prev, requester.id, net::Tag::kCacheFailure);
    requester.directory->record_chain_outcome(false, hop);
    ++dc.misses;
  }

  /// Fill a WRITE-locked device slot for `item` and publish it, following
  /// the Fig 4 policy (host hit → copy; host miss → distributed cache →
  /// load). On every fresh load the result is written to *both* levels
  /// (§4.1.2).
  sim::Process fill_device(Device& dev, std::uint32_t item,
                           cache::SlotId dev_slot) {
    Node& node = *nodes[dev.node];
    if (!node.host_cache) {
      co_await load_into_device(dev, item);
      dev.cache->publish(dev_slot);
      co_return;
    }
    for (;;) {
      GrantCell cell(sim);
      auto grant = node.host_cache->acquire(item, cell.callback());
      if (grant.outcome == cache::SlotCache::Outcome::kQueued) {
        grant = co_await cell.wait();
      }
      switch (grant.outcome) {
        case cache::SlotCache::Outcome::kHit: {
          co_await dev.h2d->transfer(wl.app.slot_size);
          dev.cache->publish(dev_slot);
          node.host_cache->release(grant.slot);
          co_return;
        }
        case cache::SlotCache::Outcome::kFill: {
          bool fetched = false;
          if (cfg.distributed_cache && nodes.size() > 1) {
            co_await remote_fetch(node, item, &fetched);
          }
          if (fetched) {
            // Remote data landed in the host slot; publish, then stage to
            // the device.
            node.host_cache->publish(grant.slot);
            co_await dev.h2d->transfer(wl.app.slot_size);
            dev.cache->publish(dev_slot);
          } else {
            // Local load: pre-processed result materialises in the device
            // slot, then is copied back so peers can fetch it (§4.1.2).
            co_await load_into_device(dev, item);
            dev.cache->publish(dev_slot);
            co_await dev.d2h->transfer(wl.app.slot_size);
            node.host_cache->publish(grant.slot);
          }
          node.host_cache->release(grant.slot);
          co_return;
        }
        case cache::SlotCache::Outcome::kFailed:
          continue;  // writer aborted; retry the host level
        case cache::SlotCache::Outcome::kQueued:
          ROCKET_CHECK(false, "queued grant after wait");
      }
    }
  }

  /// One comparison job (i, j): pin both items on the device (driving
  /// loads on miss), run the comparison kernel, release.
  sim::Process run_job(Device& dev, dnc::Pair pair) {
    cache::SlotId pins[2] = {cache::kInvalidSlot, cache::kInvalidSlot};
    const std::uint32_t items[2] = {pair.left, pair.right};
    for (int k = 0; k < 2; ++k) {
      for (;;) {
        GrantCell cell(sim);
        auto grant = dev.cache->acquire(items[k], cell.callback());
        if (grant.outcome == cache::SlotCache::Outcome::kQueued) {
          grant = co_await cell.wait();
        }
        if (grant.outcome == cache::SlotCache::Outcome::kHit) {
          pins[k] = grant.slot;
          break;
        }
        if (grant.outcome == cache::SlotCache::Outcome::kFill) {
          co_await fill_device(dev, items[k], grant.slot);
          pins[k] = grant.slot;  // publish grants the writer a read pin
          break;
        }
        // kFailed: retry.
      }
    }

    co_await dev.kernel->acquire();
    const double t = dev.spec.scale_kernel_time(
        wl.app.comparison_seconds(pair.left, pair.right, cfg.seed));
    co_await sim::delay(t);
    dev.kernel->release();
    dev.busy_comparison += t;

    const double t_post =
        wl.app.postprocess_seconds(pair.left, pair.right, cfg.seed);
    if (t_post > 0.0) {
      Node& node = *nodes[dev.node];
      co_await node.cpu->acquire();
      co_await sim::delay(t_post);
      node.cpu->release();
    }

    dev.cache->release(pins[0]);
    dev.cache->release(pins[1]);
    ++dev.pairs;
    if (cfg.record_completions) dev.completions.push_back(sim.now());

    job_limits[dev.worker_id]->release();
    if (++pairs_done == total_pairs) {
      makespan = sim.now();
      all_done->trigger();
    }
  }

  /// Worker (one per GPU): pull leaves from the scheduler, submit jobs
  /// asynchronously under the concurrent-job limit (§4.2/§4.3).
  sim::Process worker_loop(Device& dev) {
    auto& limit = *job_limits[dev.worker_id];
    double backoff = milliseconds(1);
    while (pairs_done < total_pairs) {
      auto grant = scheduler->next_leaf(dev.worker_id);
      if (!grant) {
        if (pairs_done >= total_pairs) break;
        co_await sim::delay(backoff);
        backoff = std::min(backoff * 2.0, milliseconds(64));
        continue;
      }
      backoff = milliseconds(1);
      if (grant->origin == steal::Origin::kRemote) {
        const auto victim_node = scheduler->node_of(grant->victim);
        co_await fabric->control_cost(dev.node, victim_node,
                                      net::Tag::kStealRequest);
        co_await fabric->control_cost(victim_node, dev.node,
                                      net::Tag::kStealReply);
      }
      const dnc::Region region = grant->region;
      for (std::uint32_t i = region.row_begin; i < region.row_end; ++i) {
        const std::uint32_t j_start = std::max(i + 1, region.col_begin);
        for (std::uint32_t j = j_start; j < region.col_end; ++j) {
          co_await limit.acquire();
          spawn(sim, run_job(dev, dnc::Pair{i, j}));
        }
      }
    }
  }

  /// Diagnostic dump used when the event-limit guard trips.
  void dump_state() const {
    ROCKET_ERROR("cluster stalled at t=%.3f: pairs %llu/%llu loads=%llu",
                 sim.now(), static_cast<unsigned long long>(pairs_done),
                 static_cast<unsigned long long>(total_pairs),
                 static_cast<unsigned long long>(total_loads));
    for (const auto& node : nodes) {
      for (const auto& dev : node->devices) {
        const auto& s = dev->cache->stats();
        ROCKET_ERROR(
            "  node %u gpu %u: jobs_avail=%llu kernel_q=%zu devcache "
            "hits=%llu fills=%llu stalls=%llu pending? resident=%u slots=%u",
            node->id, dev->ordinal,
            static_cast<unsigned long long>(
                job_limits[dev->worker_id]->available()),
            dev->kernel->queue_length(),
            static_cast<unsigned long long>(s.hits),
            static_cast<unsigned long long>(s.fills),
            static_cast<unsigned long long>(s.alloc_stalls),
            dev->cache->resident_items(), dev->cache->num_slots());
        ROCKET_ERROR("  kernel in_use=%llu h2d_active=%zu d2h_active=%zu\n%s",
                     static_cast<unsigned long long>(dev->kernel->in_use()),
                     dev->h2d->active_transfers(),
                     dev->d2h->active_transfers(),
                     dev->cache->debug_dump().c_str());
      }
      if (node->host_cache) {
        const auto& s = node->host_cache->stats();
        ROCKET_ERROR("  node %u host: hits=%llu fills=%llu stalls=%llu "
                     "waits=%llu resident=%u/%u",
                     node->id, static_cast<unsigned long long>(s.hits),
                     static_cast<unsigned long long>(s.fills),
                     static_cast<unsigned long long>(s.alloc_stalls),
                     static_cast<unsigned long long>(s.write_waits),
                     node->host_cache->resident_items(),
                     node->host_cache->num_slots());
        ROCKET_ERROR("%s", node->host_cache->debug_dump().c_str());
      }
      ROCKET_ERROR("  node %u cpu in_use=%llu q=%zu", node->id,
                   static_cast<unsigned long long>(node->cpu->in_use()),
                   node->cpu->queue_length());
    }
    {
      ROCKET_ERROR("  store active=%zu bytes=%llu; fabric msgs=%llu",
                   store->active_reads(),
                   static_cast<unsigned long long>(store->bytes_read()),
                   static_cast<unsigned long long>(
                       fabric->counters().total_messages()));
    }
  }

  RunMetrics run() {
    if (total_pairs > 0) {
      scheduler->seed_root(n);
      for (Device* device : workers) {
        spawn(sim, worker_loop(*device));
      }
    } else {
      makespan = 0.0;
      all_done->trigger();
    }
    try {
      sim.run();
    } catch (const std::exception&) {
      dump_state();
      throw;
    }
    ROCKET_CHECK(pairs_done == total_pairs, "cluster lost pairs");

    RunMetrics out;
    out.makespan = makespan;
    out.pairs_done = pairs_done;
    out.total_loads = total_loads;
    out.reuse_factor =
        n > 0 ? static_cast<double>(total_loads) / static_cast<double>(n) : 0.0;

    const model::PerformanceModel pm(wl.app.profile(), n);
    out.t_min = pm.t_min();
    for (const Device* device : workers) {
      out.effective_p += device->spec.relative_speed;
    }
    if (makespan > 0.0 && out.effective_p > 0.0) {
      out.efficiency = (out.t_min / out.effective_p) / makespan;
    }

    for (const auto& node : nodes) {
      out.busy_cpu += node->cpu->busy_time();
      for (const auto& device : node->devices) {
        out.busy_gpu_preprocess += device->busy_preprocess;
        out.busy_gpu_comparison += device->busy_comparison;
        out.busy_h2d += device->h2d->busy_time();
        out.busy_d2h += device->d2h->busy_time();
      }
    }
    out.busy_io = store->busy_time();
    out.storage_bytes = store->bytes_read();
    out.avg_io_usage = makespan > 0.0
                           ? static_cast<double>(out.storage_bytes) / makespan
                           : 0.0;
    out.dist_cache = dc;
    for (const auto& node : nodes) out.directory += node->directory->stats();
    out.steal_stats = scheduler->stats();
    out.traffic = fabric->counters();

    for (const Device* device : workers) {
      GpuMetrics gm;
      gm.node = device->node;
      gm.ordinal = device->ordinal;
      gm.device_name = device->spec.name;
      gm.relative_speed = device->spec.relative_speed;
      gm.pairs_done = device->pairs;
      gm.busy_preprocess = device->busy_preprocess;
      gm.busy_comparison = device->busy_comparison;
      gm.completion_times = device->completions;
      out.gpus.push_back(std::move(gm));
    }
    return out;
  }
};

SimCluster::SimCluster(ClusterConfig config, WorkloadConfig workload)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(workload))) {}

SimCluster::~SimCluster() = default;

RunMetrics SimCluster::run() { return impl_->run(); }

}  // namespace rocket::cluster

#include "cluster/experiments.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace rocket::cluster {

namespace {

/// Shared DAS-5-like infrastructure parameters: 56 Gb/s FDR InfiniBand and
/// a central MinIO storage server on the same fabric.
void apply_das5_infra(ClusterConfig& cfg) {
  cfg.fabric.latency = 1.5e-6;
  cfg.fabric.link_bandwidth = gbit_per_sec(56);
  cfg.storage.bandwidth = gbit_per_sec(56);
  cfg.storage.request_overhead = 2e-4;
}

}  // namespace

ClusterConfig das5_cluster(std::uint32_t num_nodes,
                           std::uint32_t gpus_per_node) {
  ClusterConfig cfg;
  cfg.nodes = homogeneous_nodes(num_nodes, gpu::titanx_maxwell(),
                                gpus_per_node, gigabytes(40));
  apply_das5_infra(cfg);
  return cfg;
}

ClusterConfig cartesius_cluster(std::uint32_t num_nodes) {
  ClusterConfig cfg;
  cfg.nodes = homogeneous_nodes(num_nodes, gpu::k40m(), 2, gigabytes(80));
  // Cartesius: two ConnectX-3 adapters per node; model as one faster NIC.
  apply_das5_infra(cfg);
  cfg.fabric.link_bandwidth = gbit_per_sec(2 * 56);
  return cfg;
}

ClusterConfig heterogeneous_cluster(std::vector<std::uint32_t> subset) {
  std::vector<NodeConfig> all(4);
  all[0].gpus = {gpu::k20m()};
  all[1].gpus = {gpu::gtx980(), gpu::titanx_pascal()};
  all[2].gpus = {gpu::rtx2080ti(), gpu::rtx2080ti()};
  all[3].gpus = {gpu::gtx_titan(), gpu::titanx_pascal()};
  for (auto& node : all) node.host_cache_capacity = gigabytes(40);

  ClusterConfig cfg;
  if (subset.empty()) {
    cfg.nodes = std::move(all);
  } else {
    for (const auto idx : subset) {
      ROCKET_CHECK(idx < all.size(), "heterogeneous node index out of range");
      cfg.nodes.push_back(all[idx]);
    }
  }
  apply_das5_infra(cfg);
  return cfg;
}

std::string describe(const RunMetrics& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "makespan=%s pairs=%llu R=%.2f eff=%.1f%% io=%.1f MB/s "
                "loads=%llu",
                format_seconds(m.makespan).c_str(),
                static_cast<unsigned long long>(m.pairs_done), m.reuse_factor,
                m.efficiency * 100.0, m.avg_io_usage / 1e6,
                static_cast<unsigned long long>(m.total_loads));
  return buf;
}

WorkloadConfig scaled_workload(const apps::AppModel& app, std::uint32_t n,
                               ClusterConfig& config) {
  WorkloadConfig wl;
  if (n == 0 || n >= app.default_n) {
    wl.app = app;
    wl.n = app.default_n;
    return wl;
  }
  const double factor =
      static_cast<double>(n) / static_cast<double>(app.default_n);
  wl.app = apps::scaled(app, n);
  wl.n = n;
  for (auto& node : config.nodes) {
    node.host_cache_capacity = static_cast<Bytes>(
        static_cast<double>(node.host_cache_capacity) * factor);
  }
  // Device caches scale through the override knob so the GPU spec itself
  // stays untouched.
  const Bytes device_cap =
      config.device_cache_capacity_override.value_or(
          config.nodes.front().gpus.front().cache_capacity());
  config.device_cache_capacity_override =
      static_cast<Bytes>(static_cast<double>(device_cap) * factor);
  return wl;
}

}  // namespace rocket::cluster

#pragma once

// Standard experiment configurations from the paper's evaluation (§6).
//
// These helpers pin down the platforms used by the figures so benches and
// tests share one source of truth:
//   * DAS-5 node: TitanX Maxwell, 40 GB host cache, 16 CPU threads.
//   * Cartesius node: 2 × K40m, 80 GB host cache.
//   * The four heterogeneous nodes of §6.5 (node I–IV).
//   * Storage/fabric parameters (56 Gb/s InfiniBand, central MinIO server).

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/sim_cluster.hpp"

namespace rocket::cluster {

/// DAS-5 (VU site) defaults used in §6.3–6.5.
ClusterConfig das5_cluster(std::uint32_t num_nodes,
                           std::uint32_t gpus_per_node = 1);

/// Cartesius defaults used in §6.6 (2 GPUs and 80 GB host cache per node).
ClusterConfig cartesius_cluster(std::uint32_t num_nodes);

/// The heterogeneous §6.5 testbed:
///   node I: K20m, node II: GTX980 + TitanX Pascal,
///   node III: 2× RTX2080Ti, node IV: GTX Titan + TitanX Pascal.
/// `subset` selects individual nodes (0-based); empty = all four.
ClusterConfig heterogeneous_cluster(std::vector<std::uint32_t> subset = {});

/// A quick summary line for logs/benches.
std::string describe(const RunMetrics& metrics);

/// Scale an experiment: shrink the item count to `n` while scaling the
/// *cache capacities* by the same factor relative to the app's default n,
/// preserving the dataset-to-cache ratio that drives R, efficiency and the
/// super-linear speedup shapes. Returns the scaled workload and adjusts
/// `config`'s host/device capacities in place.
WorkloadConfig scaled_workload(const apps::AppModel& app, std::uint32_t n,
                               ClusterConfig& config);

}  // namespace rocket::cluster

#pragma once

// Virtual-time cluster running the full Rocket stack.
//
// A SimCluster instantiates p nodes — each with a host-level slot cache, a
// CPU pool and one or more (virtual) GPUs with device-level slot caches,
// kernel engines and PCIe transfer links — connected by a fabric and a
// shared storage server. One worker coroutine per GPU drives the
// divide-and-conquer / work-stealing scheduler; each leaf becomes an
// asynchronous comparison job flowing through the paper's Fig 4 cache
// policy: device cache → host cache → distributed cache (mediator protocol,
// §4.1.3) → load pipeline (I/O → parse → H2D → pre-process).
//
// The cache, scheduler and directory objects are the identical policy
// classes the live runtime uses; the simulator supplies time. Everything is
// deterministic given ClusterConfig::seed.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/app_model.hpp"
#include "cache/distributed_directory.hpp"
#include "common/units.hpp"
#include "gpu/device_spec.hpp"
#include "model/performance_model.hpp"
#include "net/fabric.hpp"
#include "steal/scheduler.hpp"
#include "storage/sim_store.hpp"

namespace rocket::cluster {

struct NodeConfig {
  std::vector<gpu::DeviceSpec> gpus;
  Bytes host_cache_capacity = gigabytes(40);  // DAS-5: 40 of 64 GB
  std::uint32_t cpu_threads = 16;
};

/// Convenience: p identical nodes (the paper's homogeneous experiments).
std::vector<NodeConfig> homogeneous_nodes(std::uint32_t p,
                                          const gpu::DeviceSpec& gpu,
                                          std::uint32_t gpus_per_node = 1,
                                          Bytes host_cache = gigabytes(40));

struct ClusterConfig {
  std::vector<NodeConfig> nodes;

  /// Third-level (distributed) cache on/off and its hop limit h (§4.1.3).
  bool distributed_cache = true;
  std::uint32_t hop_limit = 1;  // paper: h=1 after the Fig 11 study

  /// Back-pressure: concurrent jobs per worker (§4.2). Clamped internally
  /// so that 2 × jobs ≤ device slots (two pins per job → no deadlock).
  std::uint32_t job_limit_per_worker = 32;

  std::uint64_t max_leaf_pairs = 1;
  std::uint64_t seed = 1;

  /// Scheduler ablations (see steal::RegionScheduler::Config).
  bool steal_smallest = false;
  bool flat_victim_selection = false;

  net::FabricConfig fabric;
  storage::SimulatedStoreConfig storage;

  /// Fig 9 knobs: override device cache capacity / disable host cache.
  std::optional<Bytes> device_cache_capacity_override;
  bool host_cache_enabled = true;

  /// Record per-pair completion timestamps (Fig 14 timelines); costs memory.
  bool record_completions = false;

  /// Safety valve for tests: abort after this many simulation events.
  std::uint64_t event_limit = 0;
};

struct WorkloadConfig {
  apps::AppModel app;
  std::uint32_t n = 0;  // 0 → app.default_n
};

/// Per-GPU results (Fig 13/14).
struct GpuMetrics {
  std::uint32_t node = 0;
  std::uint32_t ordinal = 0;  // within the node
  std::string device_name;
  double relative_speed = 1.0;
  std::uint64_t pairs_done = 0;
  double busy_preprocess = 0.0;
  double busy_comparison = 0.0;
  std::vector<double> completion_times;  // if record_completions
};

struct DistCacheMetrics {
  std::uint64_t requests = 0;
  std::vector<std::uint64_t> hits_at_hop;  // index 0 = first hop
  std::uint64_t misses = 0;

  std::uint64_t total_hits() const {
    std::uint64_t sum = 0;
    for (const auto h : hits_at_hop) sum += h;
    return sum;
  }
};

struct RunMetrics {
  double makespan = 0.0;       // virtual seconds start-to-finish
  std::uint64_t pairs_done = 0;
  std::uint64_t total_loads = 0;  // load-pipeline executions (R·n)
  double reuse_factor = 0.0;      // R
  double efficiency = 0.0;        // Eq. 5, p = aggregate relative GPU speed
  double t_min = 0.0;             // Eq. 4 for the workload

  // Aggregate per-resource busy seconds (Fig 8/10 bars).
  double busy_cpu = 0.0;
  double busy_gpu_preprocess = 0.0;
  double busy_gpu_comparison = 0.0;
  double busy_h2d = 0.0;
  double busy_d2h = 0.0;
  double busy_io = 0.0;

  // Storage (Fig 12 bottom row).
  Bytes storage_bytes = 0;
  double avg_io_usage = 0.0;  // bytes/s over the makespan

  // Third-level cache (Fig 11).
  DistCacheMetrics dist_cache;

  // Mediator-directory counters aggregated over all nodes (the same
  // DirectoryStats the live mesh reports, for live-vs-sim comparability).
  cache::DirectoryStats directory;

  // Scheduler behaviour.
  steal::SchedulerStats steal_stats;

  // Network traffic.
  net::TrafficCounters traffic;

  std::vector<GpuMetrics> gpus;

  /// Sum of relative GPU speeds: the "p" used for the efficiency metric
  /// (equals the node count in the paper's homogeneous experiments).
  double effective_p = 0.0;
};

class SimCluster {
 public:
  SimCluster(ClusterConfig config, WorkloadConfig workload);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Execute the full all-pairs workload; returns the collected metrics.
  RunMetrics run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rocket::cluster
